// Package tensor provides storage for 3-dimensional fully symmetric
// tensors, the objects the STTSV computation acts on (§3 of the paper).
//
// A fully symmetric tensor A satisfies a_ijk = a_ikj = a_jik = a_jki =
// a_kij = a_kji, so only the lower tetrahedron i >= j >= k needs to be
// stored: n(n+1)(n+2)/6 values instead of n³. The package offers
//
//   - Symmetric: packed lower-tetrahedron storage with O(1) indexing;
//   - Dense: a full n×n×n cube, used by the naive Algorithm 3 and as a
//     cross-check oracle;
//   - Block: packed storage for the b×b×b blocks of the tetrahedral block
//     partition (§6.1.3), with one layout per block type so that a
//     processor stores exactly its ≈ n³/6P share;
//   - generators for the workloads of the paper's motivating applications:
//     random symmetric tensors, symmetric CP (low-rank) tensors, and
//     3-uniform hypergraph adjacency tensors.
//
// All indices are 0-based. (The paper's math is 1-based; translation is
// mechanical.)
package tensor

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/intmath"
)

// Symmetric is a fully symmetric n×n×n tensor in packed lower-tetrahedron
// storage.
type Symmetric struct {
	N int
	// Data holds the lower tetrahedron: Data[PackedIndex(i,j,k)] = a_ijk
	// for n > i >= j >= k >= 0; length n(n+1)(n+2)/6.
	Data []float64
}

// NewSymmetric returns a zero symmetric tensor of dimension n.
func NewSymmetric(n int) *Symmetric {
	if n < 0 {
		panic(fmt.Sprintf("tensor: NewSymmetric(%d)", n))
	}
	return &Symmetric{N: n, Data: make([]float64, intmath.Tetrahedral(n))}
}

// PackedIndex maps a sorted triple i >= j >= k (0-based) to its offset in
// packed lower-tetrahedron storage: tet(i) + tri(j) + k.
func PackedIndex(i, j, k int) int {
	if i < j || j < k || k < 0 {
		panic(fmt.Sprintf("tensor: PackedIndex(%d, %d, %d) not sorted", i, j, k))
	}
	return i*(i+1)*(i+2)/6 + j*(j+1)/2 + k
}

// At returns a_ijk for any ordering of the indices.
func (t *Symmetric) At(i, j, k int) float64 {
	i, j, k = intmath.SortTriple(i, j, k)
	return t.Data[PackedIndex(i, j, k)]
}

// Set assigns a_ijk (and by symmetry all permutations).
func (t *Symmetric) Set(i, j, k int, v float64) {
	i, j, k = intmath.SortTriple(i, j, k)
	t.Data[PackedIndex(i, j, k)] = v
}

// Add accumulates v into a_ijk.
func (t *Symmetric) Add(i, j, k int, v float64) {
	i, j, k = intmath.SortTriple(i, j, k)
	t.Data[PackedIndex(i, j, k)] += v
}

// Clone returns a deep copy.
func (t *Symmetric) Clone() *Symmetric {
	c := &Symmetric{N: t.N, Data: make([]float64, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// ForEach visits every stored lower-tetrahedron entry in packed order,
// passing the sorted indices i >= j >= k and the value.
func (t *Symmetric) ForEach(f func(i, j, k int, v float64)) {
	idx := 0
	for i := 0; i < t.N; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k <= j; k++ {
				f(i, j, k, t.Data[idx])
				idx++
			}
		}
	}
}

// FrobeniusNorm returns ‖A‖_F over the full cube, computed from packed
// storage using permutation multiplicities.
func (t *Symmetric) FrobeniusNorm() float64 {
	sum := 0.0
	t.ForEach(func(i, j, k int, v float64) {
		sum += float64(intmath.Multiplicity(i+1, j+1, k+1)) * v * v
	})
	return math.Sqrt(sum)
}

// Dense expands the tensor to a full cube.
func (t *Symmetric) Dense() *Dense {
	d := NewDense(t.N)
	t.ForEach(func(i, j, k int, v float64) {
		d.setAll(i, j, k, v)
	})
	return d
}

// Dense is a full (not necessarily symmetric) n×n×n tensor in row-major
// storage, Data[(i*n+j)*n+k] = a_ijk.
type Dense struct {
	N    int
	Data []float64
}

// NewDense returns a zero cube of dimension n.
func NewDense(n int) *Dense {
	if n < 0 {
		panic(fmt.Sprintf("tensor: NewDense(%d)", n))
	}
	return &Dense{N: n, Data: make([]float64, n*n*n)}
}

// At returns a_ijk.
func (d *Dense) At(i, j, k int) float64 { return d.Data[(i*d.N+j)*d.N+k] }

// Set assigns a_ijk (this index only; Dense is not implicitly symmetric).
func (d *Dense) Set(i, j, k int, v float64) { d.Data[(i*d.N+j)*d.N+k] = v }

// setAll writes v at every permutation of (i, j, k).
func (d *Dense) setAll(i, j, k int, v float64) {
	d.Set(i, j, k, v)
	d.Set(i, k, j, v)
	d.Set(j, i, k, v)
	d.Set(j, k, i, v)
	d.Set(k, i, j, v)
	d.Set(k, j, i, v)
}

// IsSymmetric reports whether the cube is invariant under all index
// permutations, within tolerance tol.
func (d *Dense) IsSymmetric(tol float64) bool {
	n := d.N
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k <= j; k++ {
				v := d.At(i, j, k)
				for _, p := range [][3]int{{i, k, j}, {j, i, k}, {j, k, i}, {k, i, j}, {k, j, i}} {
					if math.Abs(d.At(p[0], p[1], p[2])-v) > tol {
						return false
					}
				}
			}
		}
	}
	return true
}

// FromDense packs a symmetric cube, verifying symmetry within tol.
func FromDense(d *Dense, tol float64) (*Symmetric, error) {
	if !d.IsSymmetric(tol) {
		return nil, fmt.Errorf("tensor: cube is not symmetric within %g", tol)
	}
	t := NewSymmetric(d.N)
	t.ForEach(func(i, j, k int, _ float64) {}) // no-op keeps shape obvious
	for i := 0; i < d.N; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k <= j; k++ {
				t.Data[PackedIndex(i, j, k)] = d.At(i, j, k)
			}
		}
	}
	return t, nil
}

// --- generators ---

// Random returns a symmetric tensor with i.i.d. uniform(-1,1) entries on
// the lower tetrahedron, drawn from rng.
func Random(n int, rng *rand.Rand) *Symmetric {
	t := NewSymmetric(n)
	for i := range t.Data {
		t.Data[i] = 2*rng.Float64() - 1
	}
	return t
}

// RankOne returns w · x∘x∘x.
func RankOne(w float64, x []float64) *Symmetric {
	n := len(x)
	t := NewSymmetric(n)
	idx := 0
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			xij := x[i] * x[j]
			for k := 0; k <= j; k++ {
				t.Data[idx] = w * xij * x[k]
				idx++
			}
		}
	}
	return t
}

// CP returns the symmetric CP tensor Σ_ℓ w_ℓ · x_ℓ∘x_ℓ∘x_ℓ for columns
// vectors[ℓ] (§1, the model behind Algorithm 2). All vectors must share a
// common length.
func CP(weights []float64, vectors [][]float64) (*Symmetric, error) {
	if len(weights) != len(vectors) {
		return nil, fmt.Errorf("tensor: %d weights for %d vectors", len(weights), len(vectors))
	}
	if len(vectors) == 0 {
		return nil, fmt.Errorf("tensor: empty CP decomposition")
	}
	n := len(vectors[0])
	t := NewSymmetric(n)
	for l, x := range vectors {
		if len(x) != n {
			return nil, fmt.Errorf("tensor: vector %d has length %d, want %d", l, len(x), n)
		}
		w := weights[l]
		idx := 0
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				wxij := w * x[i] * x[j]
				for k := 0; k <= j; k++ {
					t.Data[idx] += wxij * x[k]
					idx++
				}
			}
		}
	}
	return t, nil
}

// HypergraphAdjacency returns the adjacency tensor of a 3-uniform
// hypergraph on n vertices: for each hyperedge {u, v, w} of three distinct
// vertices, every permutation entry a_uvw is set to 1/2, so that
// (A ×₂ x ×₃ x)_u = Σ_{ {u,v,w} ∋ u } x_v x_w — the standard normalization
// for hypergraph eigenvector centrality (cf. the Tensor Times Same Vector
// hypergraph literature cited in §1). Duplicate edges are an error.
func HypergraphAdjacency(n int, edges [][3]int) (*Symmetric, error) {
	t := NewSymmetric(n)
	for ei, e := range edges {
		i, j, k := intmath.SortTriple(e[0], e[1], e[2])
		if k < 0 || i >= n {
			return nil, fmt.Errorf("tensor: edge %d = %v out of range [0,%d)", ei, e, n)
		}
		if i == j || j == k {
			return nil, fmt.Errorf("tensor: edge %d = %v has repeated vertices", ei, e)
		}
		p := PackedIndex(i, j, k)
		if t.Data[p] != 0 {
			return nil, fmt.Errorf("tensor: duplicate edge %v", e)
		}
		t.Data[p] = 0.5
	}
	return t, nil
}

// RandomHypergraph samples m distinct hyperedges on n vertices uniformly
// without replacement and returns the adjacency tensor.
func RandomHypergraph(n, m int, rng *rand.Rand) (*Symmetric, error) {
	max := intmath.Binomial(n, 3)
	if m > max {
		return nil, fmt.Errorf("tensor: %d edges requested of %d possible", m, max)
	}
	seen := make(map[[3]int]bool, m)
	edges := make([][3]int, 0, m)
	for len(edges) < m {
		i := rng.Intn(n)
		j := rng.Intn(n)
		k := rng.Intn(n)
		a, b, c := intmath.SortTriple(i, j, k)
		if a == b || b == c {
			continue
		}
		key := [3]int{a, b, c}
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, key)
	}
	return HypergraphAdjacency(n, edges)
}
