package tensor

import (
	"math/rand"
	"testing"
)

func TestPackTetrahedronMatchesExtractBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, c := range []struct{ n, m int }{{12, 4}, {10, 4}, {9, 3}, {5, 5}} {
		a := Random(c.n, rng)
		b := (c.n + c.m - 1) / c.m
		bp := PackTetrahedron(a, c.m, b)
		count := 0
		BlocksOfTetrahedron(c.m, func(I, J, K int) {
			count++
			got := bp.At(I, J, K)
			if got == nil {
				t.Fatalf("n=%d m=%d: block (%d,%d,%d) missing", c.n, c.m, I, J, K)
			}
			want := ExtractBlock(a, I, J, K, b)
			if got.Kind != want.Kind || got.B != want.B || len(got.Data) != len(want.Data) {
				t.Fatalf("block (%d,%d,%d): shape mismatch", I, J, K)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("block (%d,%d,%d): Data[%d] = %g want %g", I, J, K, i, got.Data[i], want.Data[i])
				}
			}
		})
		if bp.NumBlocks() != count {
			t.Fatalf("NumBlocks %d want %d", bp.NumBlocks(), count)
		}
	}
}

func TestPackBlocksKindGroupedContiguous(t *testing.T) {
	a := Random(12, rand.New(rand.NewSource(61)))
	bp := PackTetrahedron(a, 4, 3)
	// Kind groups must be monotone in kindOrder position...
	pos := map[BlockKind]int{OffDiagonal: 0, DiagPairHigh: 1, DiagPairLow: 2, Central: 3}
	last := -1
	total := 0
	for i, blk := range bp.Blocks {
		if p := pos[blk.Kind]; p < last {
			t.Fatalf("block %d kind %v out of group order", i, blk.Kind)
		} else {
			last = p
		}
		// ...and every block must view the shared buffer contiguously.
		if &blk.Data[0] != &bp.Data[total] {
			t.Fatalf("block %d not contiguous at offset %d", i, total)
		}
		total += len(blk.Data)
	}
	if total != bp.Words() {
		t.Fatalf("total %d want %d", total, bp.Words())
	}
}

func TestPackBlocksNilTensorAndSubset(t *testing.T) {
	coords := [][3]int{{3, 2, 1}, {2, 2, 1}, {1, 1, 1}}
	bp := PackBlocks(nil, coords, 4)
	if bp.NumBlocks() != 3 {
		t.Fatalf("NumBlocks %d", bp.NumBlocks())
	}
	for _, v := range bp.Data {
		if v != 0 {
			t.Fatal("nil tensor produced nonzero block data")
		}
	}
	if bp.At(3, 2, 1) == nil || bp.At(0, 0, 0) != nil {
		t.Fatal("At lookup wrong for subset")
	}
}

func TestExtractBlockIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	a := Random(12, rng)
	b := 3
	scratch := &Block{Data: make([]float64, 0, b*b*b)}
	BlocksOfTetrahedron(4, func(I, J, K int) {
		got := ExtractBlockInto(scratch, a, I, J, K, b)
		if got != scratch {
			t.Fatal("ExtractBlockInto did not return its scratch argument")
		}
		want := ExtractBlock(a, I, J, K, b)
		if got.Kind != want.Kind || len(got.Data) != len(want.Data) {
			t.Fatalf("block (%d,%d,%d): shape mismatch", I, J, K)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("block (%d,%d,%d): Data[%d] = %g want %g", I, J, K, i, got.Data[i], want.Data[i])
			}
		}
	})
	// The scratch buffer must have been reused, not reallocated, once at
	// full capacity.
	if allocs := testing.AllocsPerRun(5, func() {
		ExtractBlockInto(scratch, a, 3, 2, 1, b)
	}); allocs != 0 {
		t.Fatalf("ExtractBlockInto allocates %.0f per call on a warm scratch", allocs)
	}
}

func TestExtractBlockIntoPadding(t *testing.T) {
	// Dirty scratch + padding region: stale values must be overwritten
	// with zeros.
	a := Random(10, rand.New(rand.NewSource(63)))
	b := 3 // m=4 ⇒ padded dimension 12, blocks at the edge are padded
	scratch := &Block{Data: make([]float64, 0, b*b*b)}
	ExtractBlockInto(scratch, a, 3, 2, 1, b) // fills scratch with nonzero data
	got := ExtractBlockInto(scratch, a, 3, 3, 3, b)
	want := ExtractBlock(a, 3, 3, 3, b)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("padded block Data[%d] = %g want %g", i, got.Data[i], want.Data[i])
		}
	}
}
