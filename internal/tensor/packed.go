package tensor

// BlockPacked holds a set of tetrahedral-partition blocks of one symmetric
// tensor, extracted once into a single contiguous backing buffer. Blocks
// are grouped by kind (all off-diagonal blocks first, then the two
// diagonal-pair kinds, then central), so a kernel sweeping Blocks in order
// runs each kernel shape over a contiguous region of memory — the layout
// the register-tiled kernels of internal/sttsv are written against.
//
// A BlockPacked is the unit of tensor reuse: repeated STTSV applications
// (power iterations, CP gradient sweeps, multi-vector MTTKRP) extract the
// blocks once and revisit the same buffer, instead of re-extracting from
// packed lower-tetrahedron storage on every application.
type BlockPacked struct {
	// B is the common block edge length.
	B int
	// Blocks views the shared buffer, kind-grouped in the order
	// OffDiagonal, DiagPairHigh, DiagPairLow, Central; the input coordinate
	// order is preserved within each kind.
	Blocks []*Block
	// Data is the shared backing buffer; every Blocks[i].Data aliases a
	// full-capacity sub-slice of it.
	Data []float64

	index map[[3]int]*Block
}

// kindOrder is the grouping order of BlockPacked layouts.
var kindOrder = [...]BlockKind{OffDiagonal, DiagPairHigh, DiagPairLow, Central}

// PackBlocks extracts the listed blocks (coordinates I >= J >= K) of edge b
// into one contiguous kind-grouped buffer. A nil tensor yields zero blocks
// (useful for pure communication measurements, mirroring parallel.Run).
func PackBlocks(a *Symmetric, coords [][3]int, b int) *BlockPacked {
	total := 0
	for _, c := range coords {
		total += BlockLen(KindOfBlock(c[0], c[1], c[2]), b)
	}
	bp := &BlockPacked{
		B:      b,
		Blocks: make([]*Block, 0, len(coords)),
		Data:   make([]float64, total),
		index:  make(map[[3]int]*Block, len(coords)),
	}
	off := 0
	for _, kind := range kindOrder {
		for _, c := range coords {
			if KindOfBlock(c[0], c[1], c[2]) != kind {
				continue
			}
			l := BlockLen(kind, b)
			blk := &Block{Kind: kind, I: c[0], J: c[1], K: c[2], B: b,
				Data: bp.Data[off : off+l : off+l]}
			if a != nil {
				fillBlock(blk, a)
			}
			off += l
			bp.Blocks = append(bp.Blocks, blk)
			bp.index[c] = blk
		}
	}
	return bp
}

// PackTetrahedron extracts every block of the m×m×m block tetrahedron —
// the full tensor, as used by the sequential blocked driver and the
// reusable Operator of internal/sttsv.
func PackTetrahedron(a *Symmetric, m, b int) *BlockPacked {
	coords := make([][3]int, 0, m*(m+1)*(m+2)/6)
	BlocksOfTetrahedron(m, func(I, J, K int) {
		coords = append(coords, [3]int{I, J, K})
	})
	return PackBlocks(a, coords, b)
}

// At returns the packed block with the given coordinates, or nil when the
// set does not contain it.
func (bp *BlockPacked) At(I, J, K int) *Block { return bp.index[[3]int{I, J, K}] }

// NumBlocks returns the number of packed blocks.
func (bp *BlockPacked) NumBlocks() int { return len(bp.Blocks) }

// Words returns the total packed storage in 8-byte words.
func (bp *BlockPacked) Words() int { return len(bp.Data) }
