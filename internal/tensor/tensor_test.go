package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/intmath"
)

func TestPackedIndexBijective(t *testing.T) {
	// PackedIndex must enumerate 0..Tetrahedral(n)-1 exactly once in the
	// canonical iteration order.
	n := 12
	next := 0
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k <= j; k++ {
				if got := PackedIndex(i, j, k); got != next {
					t.Fatalf("PackedIndex(%d,%d,%d) = %d, want %d", i, j, k, got, next)
				}
				next++
			}
		}
	}
	if next != intmath.Tetrahedral(n) {
		t.Fatalf("enumerated %d, want %d", next, intmath.Tetrahedral(n))
	}
}

func TestPackedIndexPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	PackedIndex(1, 2, 0)
}

func TestAtIsPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Random(7, rng)
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			for k := 0; k < 7; k++ {
				idx := [3]int{i, j, k}
				v := a.At(i, j, k)
				for _, p := range perms {
					if got := a.At(idx[p[0]], idx[p[1]], idx[p[2]]); got != v {
						t.Fatalf("At not invariant at (%d,%d,%d) perm %v", i, j, k, p)
					}
				}
			}
		}
	}
}

func TestSetAddClone(t *testing.T) {
	a := NewSymmetric(4)
	a.Set(1, 3, 2, 5) // unsorted input
	if a.At(3, 2, 1) != 5 {
		t.Fatal("Set/At disagree")
	}
	a.Add(2, 3, 1, 2)
	if a.At(3, 2, 1) != 7 {
		t.Fatal("Add did not accumulate")
	}
	c := a.Clone()
	c.Set(0, 0, 0, 9)
	if a.At(0, 0, 0) == 9 {
		t.Fatal("Clone aliases original")
	}
}

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Random(6, rng)
	d := a.Dense()
	if !d.IsSymmetric(0) {
		t.Fatal("Dense() not symmetric")
	}
	back, err := FromDense(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	for idx := range a.Data {
		if a.Data[idx] != back.Data[idx] {
			t.Fatalf("round trip differs at %d", idx)
		}
	}
}

func TestFromDenseRejectsAsymmetric(t *testing.T) {
	d := NewDense(3)
	d.Set(2, 1, 0, 1)
	if _, err := FromDense(d, 1e-12); err == nil {
		t.Fatal("asymmetric cube accepted")
	}
}

func TestFrobeniusNormMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 9} {
		a := Random(n, rng)
		d := a.Dense()
		sum := 0.0
		for _, v := range d.Data {
			sum += v * v
		}
		want := math.Sqrt(sum)
		if got := a.FrobeniusNorm(); math.Abs(got-want) > 1e-10*(1+want) {
			t.Fatalf("n=%d: packed norm %g, dense norm %g", n, got, want)
		}
	}
}

func TestRankOne(t *testing.T) {
	x := []float64{1, 2, -1}
	a := RankOne(2, x)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				want := 2 * x[i] * x[j] * x[k]
				if got := a.At(i, j, k); math.Abs(got-want) > 1e-14 {
					t.Fatalf("RankOne at (%d,%d,%d): %g want %g", i, j, k, got, want)
				}
			}
		}
	}
}

func TestCPMatchesSumOfRankOnes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, r := 5, 3
	weights := make([]float64, r)
	vectors := make([][]float64, r)
	for l := range vectors {
		weights[l] = rng.NormFloat64()
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		vectors[l] = v
	}
	got, err := CP(weights, vectors)
	if err != nil {
		t.Fatal(err)
	}
	want := NewSymmetric(n)
	for l := range vectors {
		r1 := RankOne(weights[l], vectors[l])
		for idx := range want.Data {
			want.Data[idx] += r1.Data[idx]
		}
	}
	for idx := range want.Data {
		if math.Abs(got.Data[idx]-want.Data[idx]) > 1e-12 {
			t.Fatalf("CP differs at %d", idx)
		}
	}
}

func TestCPValidation(t *testing.T) {
	if _, err := CP([]float64{1}, [][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Fatal("mismatched weights accepted")
	}
	if _, err := CP(nil, nil); err == nil {
		t.Fatal("empty CP accepted")
	}
	if _, err := CP([]float64{1, 1}, [][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged vectors accepted")
	}
}

func TestHypergraphAdjacency(t *testing.T) {
	a, err := HypergraphAdjacency(4, [][3]int{{0, 1, 2}, {1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if a.At(2, 1, 0) != 0.5 || a.At(0, 2, 1) != 0.5 || a.At(3, 1, 2) != 0.5 {
		t.Fatal("edge entries wrong")
	}
	if a.At(3, 1, 0) != 0 {
		t.Fatal("non-edge entry nonzero")
	}
}

func TestHypergraphAdjacencyErrors(t *testing.T) {
	if _, err := HypergraphAdjacency(3, [][3]int{{0, 1, 3}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := HypergraphAdjacency(3, [][3]int{{0, 1, 1}}); err == nil {
		t.Fatal("degenerate edge accepted")
	}
	if _, err := HypergraphAdjacency(4, [][3]int{{0, 1, 2}, {2, 1, 0}}); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestRandomHypergraph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, err := RandomHypergraph(10, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	a.ForEach(func(i, j, k int, v float64) {
		if v != 0 {
			if v != 0.5 {
				t.Fatalf("entry (%d,%d,%d) = %g", i, j, k, v)
			}
			if i == j || j == k {
				t.Fatalf("diagonal entry (%d,%d,%d) set", i, j, k)
			}
			count++
		}
	})
	if count != 30 {
		t.Fatalf("hypergraph has %d edges, want 30", count)
	}
	if _, err := RandomHypergraph(4, 100, rng); err == nil {
		t.Fatal("too many edges accepted")
	}
}

func TestForEachOrderMatchesPackedIndex(t *testing.T) {
	a := NewSymmetric(6)
	for idx := range a.Data {
		a.Data[idx] = float64(idx)
	}
	a.ForEach(func(i, j, k int, v float64) {
		if int(v) != PackedIndex(i, j, k) {
			t.Fatalf("ForEach order mismatch at (%d,%d,%d)", i, j, k)
		}
	})
}

func TestSymmetryPropertyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Random(8, rng)
	f := func(i, j, k uint8) bool {
		x, y, z := int(i)%8, int(j)%8, int(k)%8
		return a.At(x, y, z) == a.At(z, x, y) && a.At(x, y, z) == a.At(y, z, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
