package tensor

import (
	"fmt"

	"repro/internal/intmath"
)

// BlockKind classifies a b×b×b block of the lower tetrahedron by its block
// coordinates (I, J, K) with I >= J >= K, following §6 of the paper.
type BlockKind int

const (
	// OffDiagonal means I > J > K: every element of the block is a strict
	// lower-tetrahedron entry, so all b³ values are stored.
	OffDiagonal BlockKind = iota
	// DiagPairHigh means I == J > K (a non-central diagonal block of type
	// (a, a, c)): stored entries have local di >= dj and free dk, i.e.
	// b²(b+1)/2 values.
	DiagPairHigh
	// DiagPairLow means I > J == K (type (a, c, c)): stored entries have
	// free di and dj >= dk, again b²(b+1)/2 values.
	DiagPairLow
	// Central means I == J == K: stored entries have di >= dj >= dk,
	// b(b+1)(b+2)/6 values.
	Central
)

func (k BlockKind) String() string {
	switch k {
	case OffDiagonal:
		return "off-diagonal"
	case DiagPairHigh:
		return "diag-pair-high"
	case DiagPairLow:
		return "diag-pair-low"
	case Central:
		return "central"
	}
	return fmt.Sprintf("BlockKind(%d)", int(k))
}

// KindOfBlock classifies block coordinates I >= J >= K.
func KindOfBlock(I, J, K int) BlockKind {
	switch intmath.ClassifyTriple(I, J, K) {
	case intmath.TripleStrict:
		return OffDiagonal
	case intmath.TriplePairHigh:
		return DiagPairHigh
	case intmath.TriplePairLow:
		return DiagPairLow
	default:
		return Central
	}
}

// BlockLen returns the number of stored values for a block of the given
// kind and edge length b. These are the per-block storage counts of
// §6.1.3: b³, b²(b+1)/2 and b(b+1)(b+2)/6.
func BlockLen(kind BlockKind, b int) int {
	switch kind {
	case OffDiagonal:
		return b * b * b
	case DiagPairHigh, DiagPairLow:
		return b * b * (b + 1) / 2
	case Central:
		return intmath.Tetrahedral(b)
	}
	panic("tensor: unknown block kind")
}

// Block is the packed storage for one lower-tetrahedron block of a
// symmetric tensor in the tetrahedral block partition. Local indices
// (di, dj, dk) run over [0, b) with the kind-specific ordering constraint;
// the global tensor indices are (I·b+di, J·b+dj, K·b+dk).
type Block struct {
	Kind    BlockKind
	I, J, K int // block coordinates, I >= J >= K
	B       int // block edge length
	Data    []float64
}

// NewBlock allocates a zero block.
func NewBlock(I, J, K, b int) *Block {
	kind := KindOfBlock(I, J, K)
	return &Block{Kind: kind, I: I, J: J, K: K, B: b, Data: make([]float64, BlockLen(kind, b))}
}

// offset maps valid local indices to the packed offset.
func (blk *Block) offset(di, dj, dk int) int {
	b := blk.B
	switch blk.Kind {
	case OffDiagonal:
		return (di*b+dj)*b + dk
	case DiagPairHigh:
		if di < dj {
			panic(fmt.Sprintf("tensor: block %v local (%d,%d,%d) needs di >= dj", blk.Kind, di, dj, dk))
		}
		return (di*(di+1)/2+dj)*b + dk
	case DiagPairLow:
		if dj < dk {
			panic(fmt.Sprintf("tensor: block %v local (%d,%d,%d) needs dj >= dk", blk.Kind, di, dj, dk))
		}
		return di*(b*(b+1)/2) + dj*(dj+1)/2 + dk
	case Central:
		if di < dj || dj < dk {
			panic(fmt.Sprintf("tensor: block %v local (%d,%d,%d) needs di >= dj >= dk", blk.Kind, di, dj, dk))
		}
		return di*(di+1)*(di+2)/6 + dj*(dj+1)/2 + dk
	}
	panic("tensor: unknown block kind")
}

// At returns the stored value at valid local indices.
func (blk *Block) At(di, dj, dk int) float64 { return blk.Data[blk.offset(di, dj, dk)] }

// Set writes the stored value at valid local indices.
func (blk *Block) Set(di, dj, dk int, v float64) { blk.Data[blk.offset(di, dj, dk)] = v }

// ForEach visits every stored entry in packed order with its local indices.
func (blk *Block) ForEach(f func(di, dj, dk int, v float64)) {
	b := blk.B
	idx := 0
	switch blk.Kind {
	case OffDiagonal:
		for di := 0; di < b; di++ {
			for dj := 0; dj < b; dj++ {
				for dk := 0; dk < b; dk++ {
					f(di, dj, dk, blk.Data[idx])
					idx++
				}
			}
		}
	case DiagPairHigh:
		for di := 0; di < b; di++ {
			for dj := 0; dj <= di; dj++ {
				for dk := 0; dk < b; dk++ {
					f(di, dj, dk, blk.Data[idx])
					idx++
				}
			}
		}
	case DiagPairLow:
		for di := 0; di < b; di++ {
			for dj := 0; dj < b; dj++ {
				for dk := 0; dk <= dj; dk++ {
					f(di, dj, dk, blk.Data[idx])
					idx++
				}
			}
		}
	case Central:
		for di := 0; di < b; di++ {
			for dj := 0; dj <= di; dj++ {
				for dk := 0; dk <= dj; dk++ {
					f(di, dj, dk, blk.Data[idx])
					idx++
				}
			}
		}
	}
}

// GlobalIndices translates local indices to global tensor indices.
func (blk *Block) GlobalIndices(di, dj, dk int) (i, j, k int) {
	return blk.I*blk.B + di, blk.J*blk.B + dj, blk.K*blk.B + dk
}

// fillBlock overwrites every stored entry of blk with the corresponding
// value of t (zero where the global indices fall in the padding region).
// The stored entries of any valid block are sorted global triples — the
// block coordinates satisfy I >= J >= K and the kind-specific local
// ordering keeps i >= j >= k — so no per-element sorting is needed.
func fillBlock(blk *Block, t *Symmetric) {
	idx := 0
	blk.ForEach(func(di, dj, dk int, _ float64) {
		i, j, k := blk.GlobalIndices(di, dj, dk)
		v := 0.0
		if i < t.N && j < t.N && k < t.N {
			v = t.Data[PackedIndex(i, j, k)]
		}
		blk.Data[idx] = v
		idx++
	})
}

// ExtractBlock copies block (I, J, K) of edge b out of a packed symmetric
// tensor. Global indices at or beyond t.N (the zero padding of §6.1 when
// q²+1 does not divide n) read as zero.
func ExtractBlock(t *Symmetric, I, J, K, b int) *Block {
	blk := NewBlock(I, J, K, b)
	fillBlock(blk, t)
	return blk
}

// ExtractBlockInto refills blk in place as block (I, J, K) of edge b of t,
// reusing blk.Data when its capacity suffices. It lets streaming callers
// (sttsv.Blocked) visit every block of the tetrahedron with one scratch
// buffer instead of one allocation per block. Returns blk.
func ExtractBlockInto(blk *Block, t *Symmetric, I, J, K, b int) *Block {
	kind := KindOfBlock(I, J, K)
	l := BlockLen(kind, b)
	if cap(blk.Data) < l {
		blk.Data = make([]float64, l, b*b*b) // b³ fits any kind at this edge
	} else {
		blk.Data = blk.Data[:l]
	}
	blk.Kind, blk.I, blk.J, blk.K, blk.B = kind, I, J, K, b
	fillBlock(blk, t)
	return blk
}

// BlocksOfTetrahedron enumerates the block coordinates (I >= J >= K) of the
// lower tetrahedron of an m×m×m grid of blocks, in packed order. It is the
// block-level analogue of Symmetric.ForEach.
func BlocksOfTetrahedron(m int, f func(I, J, K int)) {
	for I := 0; I < m; I++ {
		for J := 0; J <= I; J++ {
			for K := 0; K <= J; K++ {
				f(I, J, K)
			}
		}
	}
}
