package steiner

import "fmt"

// This file implements the classical doubling construction for Steiner
// quadruple systems: from an SQS(n) one obtains an SQS(2n) by taking two
// disjoint copies and joining them with matched one-factors of the two
// complete graphs (Colbourn & Dinitz, Handbook of Combinatorial Designs).
// Together with SQS(8) this yields the infinite family SQS(8·2^k) —
// machine sizes P = 14, 140, 1240, … beyond the spherical family's
// q(q²+1), enlarging the set of processor counts the tetrahedral
// partition supports (the paper's §6 notes that "there are many more
// Steiner (n, r, 3) systems which can be used to generate tetrahedral
// block partitions").

// OneFactorization returns a partition of the edges of K_n (even n >= 2)
// into n−1 perfect matchings, via the round-robin "circle" method: vertex
// n−1 is fixed and the others rotate. Factor r pairs vertex n−1 with r,
// and i+r with r−i (mod n−1) otherwise.
func OneFactorization(n int) ([][][2]int, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("steiner: one-factorization needs even n >= 2, got %d", n)
	}
	m := n - 1
	factors := make([][][2]int, m)
	for r := 0; r < m; r++ {
		pairs := make([][2]int, 0, n/2)
		pairs = append(pairs, [2]int{m, r})
		for i := 1; i <= (n-2)/2; i++ {
			a := (r + i) % m
			b := (r - i + m) % m
			pairs = append(pairs, [2]int{a, b})
		}
		factors[r] = pairs
	}
	return factors, nil
}

// Double builds an SQS(2n) from an SQS(n) by the doubling construction.
// With X = {1..n} and Y = {n+1..2n}:
//
//   - every block of the input system on X and its shifted copy on Y;
//   - for each r in 0..n−2, every quadruple {x₁, x₂, y₁, y₂} with
//     {x₁, x₂} in the r-th one-factor of K_X and {y₁, y₂} in the r-th
//     one-factor of K_Y.
//
// The result has 2·n(n−1)(n−2)/24 + (n−1)·(n/2)² blocks = 2n(2n−1)(2n−2)/24,
// and is verified before being returned.
func Double(s *System) (*System, error) {
	if s.R != 4 {
		return nil, fmt.Errorf("steiner: doubling needs a quadruple system (r=4), got r=%d", s.R)
	}
	n := s.N
	factors, err := OneFactorization(n)
	if err != nil {
		return nil, err
	}

	blocks := make([][]int, 0, 2*len(s.Blocks)+(n-1)*(n/2)*(n/2))
	for _, blk := range s.Blocks {
		blocks = append(blocks, append([]int(nil), blk...))
		shifted := make([]int, len(blk))
		for i, p := range blk {
			shifted[i] = p + n
		}
		blocks = append(blocks, shifted)
	}
	for r := 0; r < n-1; r++ {
		for _, xp := range factors[r] {
			for _, yp := range factors[r] {
				// Points are 0-based in the factorization; the system is
				// 1-based with Y offset by n.
				blocks = append(blocks, []int{xp[0] + 1, xp[1] + 1, yp[0] + 1 + n, yp[1] + 1 + n})
			}
		}
	}
	return FromBlocks(2*n, 4, blocks)
}

// SQSDoubled returns the SQS(8·2^k) obtained by doubling SQS(8) k times
// (k = 0 gives SQS(8) itself).
func SQSDoubled(k int) (*System, error) {
	if k < 0 {
		return nil, fmt.Errorf("steiner: SQSDoubled(%d)", k)
	}
	s := SQS8()
	for i := 0; i < k; i++ {
		d, err := Double(s)
		if err != nil {
			return nil, fmt.Errorf("steiner: doubling step %d: %w", i+1, err)
		}
		s = d
	}
	return s, nil
}
