package steiner

import (
	"testing"
)

func TestOneFactorization(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8, 10, 16} {
		factors, err := OneFactorization(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(factors) != n-1 {
			t.Fatalf("n=%d: %d factors, want %d", n, len(factors), n-1)
		}
		// Every edge of K_n appears exactly once across factors, and each
		// factor is a perfect matching.
		seen := make(map[[2]int]bool)
		for fi, f := range factors {
			if len(f) != n/2 {
				t.Fatalf("n=%d factor %d: %d pairs, want %d", n, fi, len(f), n/2)
			}
			used := make(map[int]bool)
			for _, p := range f {
				a, b := p[0], p[1]
				if a == b || a < 0 || b < 0 || a >= n || b >= n {
					t.Fatalf("n=%d factor %d: bad pair %v", n, fi, p)
				}
				if used[a] || used[b] {
					t.Fatalf("n=%d factor %d: vertex reused in %v", n, fi, p)
				}
				used[a], used[b] = true, true
				if a > b {
					a, b = b, a
				}
				key := [2]int{a, b}
				if seen[key] {
					t.Fatalf("n=%d: edge %v in two factors", n, key)
				}
				seen[key] = true
			}
		}
		if len(seen) != n*(n-1)/2 {
			t.Fatalf("n=%d: covered %d edges, want %d", n, len(seen), n*(n-1)/2)
		}
	}
}

func TestOneFactorizationRejectsOdd(t *testing.T) {
	if _, err := OneFactorization(7); err == nil {
		t.Fatal("odd n accepted")
	}
	if _, err := OneFactorization(0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestDoubleSQS8(t *testing.T) {
	s16, err := Double(SQS8())
	if err != nil {
		t.Fatal(err)
	}
	if s16.N != 16 || s16.R != 4 {
		t.Fatalf("doubled system: n=%d r=%d", s16.N, s16.R)
	}
	if want := 16 * 15 * 14 / 24; s16.NumBlocks() != want {
		t.Fatalf("SQS(16) has %d blocks, want %d", s16.NumBlocks(), want)
	}
	// FromBlocks already verified it, but assert explicitly.
	if err := s16.Verify(); err != nil {
		t.Fatal(err)
	}
	// Counting lemmas for (16,4,3): pair count 14/2 = 7, element count
	// 15·14/6 = 35.
	if s16.PairCount() != 7 || s16.ElementCount() != 35 {
		t.Fatalf("counts: pair %d element %d", s16.PairCount(), s16.ElementCount())
	}
}

func TestDoubleTwice(t *testing.T) {
	if testing.Short() {
		t.Skip("SQS(32) verification enumerates C(32,3) triples")
	}
	s32, err := SQSDoubled(2)
	if err != nil {
		t.Fatal(err)
	}
	if s32.N != 32 {
		t.Fatalf("n = %d", s32.N)
	}
	if want := 32 * 31 * 30 / 24; s32.NumBlocks() != want {
		t.Fatalf("SQS(32) has %d blocks, want %d", s32.NumBlocks(), want)
	}
}

func TestSQSDoubledBase(t *testing.T) {
	s, err := SQSDoubled(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 {
		t.Fatalf("k=0 should be SQS(8), got n=%d", s.N)
	}
	if _, err := SQSDoubled(-1); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestDoubleRejectsNonQuadruple(t *testing.T) {
	s, err := Spherical(2) // r = 3
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Double(s); err == nil {
		t.Fatal("r=3 system accepted for doubling")
	}
}
