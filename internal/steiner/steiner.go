// Package steiner constructs and verifies the Steiner (n, r, 3) systems
// that generate tetrahedral block partitions (§6 of the paper).
//
// A Steiner (n, r, s)-system is a collection Σ of size-r subsets of
// {1, …, n} such that every size-s subset is contained in exactly one
// member of Σ (Definition 6.1). Two families are provided:
//
//   - Spherical(q): the Steiner (q²+1, q+1, 3) system realized as the orbit
//     of the projective line PG(1,q) ⊂ PG(1,q²) under PGL₂(q²)
//     (Theorem 6.5). This is the family Algorithm 5 uses, giving
//     P = q(q²+1) processors.
//
//   - SQS8(): the unique Steiner (8, 4, 3) quadruple system (the planes of
//     AG(3,2)), used by the paper's Appendix A example with P = 14.
//
// The package also exposes the incidence counts of Lemmas 6.3 and 6.4: a
// pair of points lies in (n−2)/(r−2) blocks and a single point in
// (n−1)(n−2)/((r−1)(r−2)) blocks.
package steiner

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/gf"
	"repro/internal/intmath"
)

// System is a verified Steiner (N, R, 3) system over points 1..N.
type System struct {
	N, R int
	// Blocks holds each block as a strictly increasing slice of points in
	// 1..N. Block order is deterministic for a given construction.
	Blocks [][]int

	// pairIndex maps each unordered pair (encoded lo*(N+1)+hi) to the
	// indices of the blocks containing it; built lazily by index().
	pairIndex map[int][]int
	elemIndex [][]int
}

// NumBlocks returns |Σ|.
func (s *System) NumBlocks() int { return len(s.Blocks) }

// PairCount returns the number of blocks containing any fixed pair of
// distinct points: (n−2)/(r−2) (Lemma 6.3).
func (s *System) PairCount() int { return (s.N - 2) / (s.R - 2) }

// ElementCount returns the number of blocks containing any fixed point:
// (n−1)(n−2)/((r−1)(r−2)) (Lemma 6.4).
func (s *System) ElementCount() int {
	return (s.N - 1) * (s.N - 2) / ((s.R - 1) * (s.R - 2))
}

func (s *System) index() {
	if s.pairIndex != nil {
		return
	}
	s.pairIndex = make(map[int][]int)
	s.elemIndex = make([][]int, s.N+1)
	for bi, blk := range s.Blocks {
		for x := 0; x < len(blk); x++ {
			s.elemIndex[blk[x]] = append(s.elemIndex[blk[x]], bi)
			for y := x + 1; y < len(blk); y++ {
				k := blk[x]*(s.N+1) + blk[y]
				s.pairIndex[k] = append(s.pairIndex[k], bi)
			}
		}
	}
}

// BlocksWithPair returns the indices of blocks containing both points a and
// b (a != b). The result aliases internal state and must not be modified.
func (s *System) BlocksWithPair(a, b int) []int {
	if a == b {
		panic("steiner: BlocksWithPair with equal points")
	}
	if a > b {
		a, b = b, a
	}
	s.index()
	return s.pairIndex[a*(s.N+1)+b]
}

// BlocksWithElement returns the indices of blocks containing point a. The
// result aliases internal state and must not be modified.
func (s *System) BlocksWithElement(a int) []int {
	s.index()
	return s.elemIndex[a]
}

// Verify checks the Steiner property exhaustively: every block is a
// strictly increasing size-R subset of 1..N and every 3-subset of 1..N
// appears in exactly one block. It returns a descriptive error on the first
// violation found.
func (s *System) Verify() error {
	if s.R < 3 || s.N < s.R {
		return fmt.Errorf("steiner: invalid parameters n=%d r=%d", s.N, s.R)
	}
	for bi, blk := range s.Blocks {
		if len(blk) != s.R {
			return fmt.Errorf("steiner: block %d has size %d, want %d", bi, len(blk), s.R)
		}
		for i, p := range blk {
			if p < 1 || p > s.N {
				return fmt.Errorf("steiner: block %d contains out-of-range point %d", bi, p)
			}
			if i > 0 && blk[i-1] >= p {
				return fmt.Errorf("steiner: block %d is not strictly increasing", bi)
			}
		}
	}
	seen := make(map[[3]int]int)
	for bi, blk := range s.Blocks {
		for x := 0; x < len(blk); x++ {
			for y := x + 1; y < len(blk); y++ {
				for z := y + 1; z < len(blk); z++ {
					key := [3]int{blk[x], blk[y], blk[z]}
					if prev, dup := seen[key]; dup {
						return fmt.Errorf("steiner: triple %v in blocks %d and %d", key, prev, bi)
					}
					seen[key] = bi
				}
			}
		}
	}
	want := intmath.Binomial(s.N, 3)
	if len(seen) != want {
		return fmt.Errorf("steiner: %d distinct triples covered, want %d", len(seen), want)
	}
	return nil
}

// FromBlocks builds a System from explicit blocks (each a set of distinct
// points of 1..n) and verifies it. Input blocks are copied and sorted.
func FromBlocks(n, r int, blocks [][]int) (*System, error) {
	s := &System{N: n, R: r, Blocks: make([][]int, len(blocks))}
	for i, b := range blocks {
		cp := append([]int(nil), b...)
		sort.Ints(cp)
		s.Blocks[i] = cp
	}
	if err := s.Verify(); err != nil {
		return nil, err
	}
	return s, nil
}

// Spherical constructs the Steiner (q²+1, q+1, 3) system for a prime power
// q as the PGL₂(q²)-orbit of PG(1,q) inside PG(1,q²). The projective line
// over GF(q²) has q²+1 points — the field elements plus ∞ — which are
// numbered 1..q²+1 with ∞ last and field elements in increasing integer
// encoding.
func Spherical(q int) (*System, error) {
	if _, _, ok := intmath.PrimePower(q); !ok {
		return nil, fmt.Errorf("steiner: q=%d is not a prime power", q)
	}
	bigQ := q * q
	f, err := gf.New(bigQ)
	if err != nil {
		return nil, fmt.Errorf("steiner: building GF(%d): %w", bigQ, err)
	}
	sub, err := f.Subfield(q)
	if err != nil {
		return nil, fmt.Errorf("steiner: embedding GF(%d) in GF(%d): %w", q, bigQ, err)
	}

	// Points: field element e -> e+1, infinity -> bigQ+1.
	const offset = 1
	infinity := bigQ + offset
	base := make([]int, 0, q+1)
	for _, e := range sub {
		base = append(base, e+offset)
	}
	base = append(base, infinity)

	// Möbius image of a point under z -> (az+b)/(cz+d).
	moebius := func(a, b, c, d, pt int) int {
		if pt == infinity {
			if c == 0 {
				return infinity
			}
			return f.Div(a, c) + offset
		}
		z := pt - offset
		den := f.Add(f.Mul(c, z), d)
		if den == 0 {
			return infinity
		}
		num := f.Add(f.Mul(a, z), b)
		return f.Div(num, den) + offset
	}

	// Enumerate PGL₂(q²): invertible matrices up to scalar, canonicalized
	// by requiring the first nonzero of (a, b, c, d) to be 1.
	seen := make(map[string]struct{})
	var blocks [][]int
	img := make([]int, 0, q+1)
	var sb strings.Builder
	for a := 0; a < bigQ; a++ {
		for b := 0; b < bigQ; b++ {
			for c := 0; c < bigQ; c++ {
				for d := 0; d < bigQ; d++ {
					if f.Sub(f.Mul(a, d), f.Mul(b, c)) == 0 {
						continue
					}
					switch {
					case a != 0:
						if a != 1 {
							continue
						}
					case b != 0:
						if b != 1 {
							continue
						}
					case c != 0:
						if c != 1 {
							continue
						}
					default:
						if d != 1 {
							continue
						}
					}
					img = img[:0]
					for _, pt := range base {
						img = append(img, moebius(a, b, c, d, pt))
					}
					sort.Ints(img)
					sb.Reset()
					for _, p := range img {
						sb.WriteString(strconv.Itoa(p))
						sb.WriteByte(',')
					}
					key := sb.String()
					if _, dup := seen[key]; dup {
						continue
					}
					seen[key] = struct{}{}
					blocks = append(blocks, append([]int(nil), img...))
				}
			}
		}
	}

	wantBlocks := q * (bigQ + 1)
	if len(blocks) != wantBlocks {
		return nil, fmt.Errorf("steiner: spherical geometry for q=%d produced %d blocks, want %d",
			q, len(blocks), wantBlocks)
	}
	sortBlocks(blocks)
	s := &System{N: bigQ + 1, R: q + 1, Blocks: blocks}
	if err := s.Verify(); err != nil {
		return nil, fmt.Errorf("steiner: spherical geometry for q=%d failed verification: %w", q, err)
	}
	return s, nil
}

// SQS8 constructs the Steiner (8, 4, 3) quadruple system used in the
// paper's Appendix A (Table 3): the 14 planes of the affine geometry
// AG(3,2). A quadruple {a,b,c,d} of points 1..8 is a block exactly when
// (a−1) ⊕ (b−1) ⊕ (c−1) ⊕ (d−1) = 0.
func SQS8() *System {
	var blocks [][]int
	for a := 1; a <= 8; a++ {
		for b := a + 1; b <= 8; b++ {
			for c := b + 1; c <= 8; c++ {
				x := (a - 1) ^ (b - 1) ^ (c - 1)
				d := x + 1
				if d > c { // each block discovered once, from its 3 smallest
					blocks = append(blocks, []int{a, b, c, d})
				}
			}
		}
	}
	sortBlocks(blocks)
	s := &System{N: 8, R: 4, Blocks: blocks}
	if err := s.Verify(); err != nil {
		panic("steiner: SQS(8) construction is wrong: " + err.Error())
	}
	return s
}

// sortBlocks orders blocks lexicographically for deterministic output.
func sortBlocks(blocks [][]int) {
	sort.Slice(blocks, func(i, j int) bool {
		a, b := blocks[i], blocks[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// String summarizes the system parameters.
func (s *System) String() string {
	return fmt.Sprintf("Steiner(%d, %d, 3) with %d blocks", s.N, s.R, len(s.Blocks))
}
