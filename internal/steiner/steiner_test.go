package steiner

import (
	"testing"

	"repro/internal/intmath"
)

func TestSQS8(t *testing.T) {
	s := SQS8()
	if s.N != 8 || s.R != 4 {
		t.Fatalf("SQS8 parameters: n=%d r=%d", s.N, s.R)
	}
	if got := s.NumBlocks(); got != 14 {
		t.Fatalf("SQS8 has %d blocks, want 14", got)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// Lemma 6.3: pair count (8-2)/(4-2) = 3; Lemma 6.4: element count
	// 7*6/(3*2) = 7.
	if got := s.PairCount(); got != 3 {
		t.Errorf("PairCount = %d, want 3", got)
	}
	if got := s.ElementCount(); got != 7 {
		t.Errorf("ElementCount = %d, want 7", got)
	}
}

func TestSQS8BlockIntersections(t *testing.T) {
	// In SQS(8), two distinct blocks meet in 0 or 2 points. This is the
	// structural fact behind Figure 1's 12-step schedule.
	s := SQS8()
	for i := 0; i < len(s.Blocks); i++ {
		for j := i + 1; j < len(s.Blocks); j++ {
			n := intersectSize(s.Blocks[i], s.Blocks[j])
			if n != 0 && n != 2 {
				t.Fatalf("blocks %v and %v intersect in %d points", s.Blocks[i], s.Blocks[j], n)
			}
		}
	}
}

func intersectSize(a, b []int) int {
	in := make(map[int]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	n := 0
	for _, x := range b {
		if in[x] {
			n++
		}
	}
	return n
}

// sphericalCases lists the prime powers exercised; q=2 gives the paper's
// smallest admissible machine (P=10) and q=3 gives the worked example
// (Table 1, P=30).
var sphericalCases = []struct {
	q, n, r, blocks int
}{
	{2, 5, 3, 10},
	{3, 10, 4, 30},
	{4, 17, 5, 68},
	{5, 26, 6, 130},
}

func TestSpherical(t *testing.T) {
	for _, c := range sphericalCases {
		s, err := Spherical(c.q)
		if err != nil {
			t.Fatalf("Spherical(%d): %v", c.q, err)
		}
		if s.N != c.n || s.R != c.r {
			t.Fatalf("Spherical(%d): n=%d r=%d, want n=%d r=%d", c.q, s.N, s.R, c.n, c.r)
		}
		if got := s.NumBlocks(); got != c.blocks {
			t.Fatalf("Spherical(%d): %d blocks, want %d", c.q, got, c.blocks)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("Spherical(%d): %v", c.q, err)
		}
	}
}

func TestSphericalCountingLemmas(t *testing.T) {
	for _, c := range sphericalCases {
		s, err := Spherical(c.q)
		if err != nil {
			t.Fatal(err)
		}
		q := c.q
		// Paper §6: any index appears in q(q+1) blocks; two indices
		// together appear in q+1 blocks.
		if got, want := s.ElementCount(), q*(q+1); got != want {
			t.Errorf("q=%d: ElementCount = %d, want %d", q, got, want)
		}
		if got, want := s.PairCount(), q+1; got != want {
			t.Errorf("q=%d: PairCount = %d, want %d", q, got, want)
		}
		// Verify the formulas against the actual incidence structure.
		for a := 1; a <= s.N; a++ {
			if got := len(s.BlocksWithElement(a)); got != s.ElementCount() {
				t.Fatalf("q=%d: element %d in %d blocks, want %d", q, a, got, s.ElementCount())
			}
			for b := a + 1; b <= s.N; b++ {
				if got := len(s.BlocksWithPair(a, b)); got != s.PairCount() {
					t.Fatalf("q=%d: pair (%d,%d) in %d blocks, want %d", q, a, b, got, s.PairCount())
				}
			}
		}
	}
}

func TestSphericalPrimePowerQ(t *testing.T) {
	// q=4 = 2² exercises the non-prime prime-power path (GF(16) with
	// GF(4) subfield detection via Frobenius fixed points).
	s, err := Spherical(4)
	if err != nil {
		t.Fatalf("Spherical(4): %v", err)
	}
	if s.N != 17 || s.R != 5 || s.NumBlocks() != 68 {
		t.Fatalf("Spherical(4): got (%d,%d,%d)", s.N, s.R, s.NumBlocks())
	}
}

func TestSphericalRejectsNonPrimePower(t *testing.T) {
	if _, err := Spherical(6); err == nil {
		t.Error("Spherical(6) should fail")
	}
	if _, err := Spherical(0); err == nil {
		t.Error("Spherical(0) should fail")
	}
}

func TestSphericalDeterministic(t *testing.T) {
	a, err := Spherical(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Spherical(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatal("nondeterministic block count")
	}
	for i := range a.Blocks {
		for j := range a.Blocks[i] {
			if a.Blocks[i][j] != b.Blocks[i][j] {
				t.Fatalf("nondeterministic block %d", i)
			}
		}
	}
}

func TestFromBlocks(t *testing.T) {
	// The trivial Steiner (r, r, 3) system: one block containing all
	// points.
	s, err := FromBlocks(4, 4, [][]int{{4, 2, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Blocks[0][0] != 1 || s.Blocks[0][3] != 4 {
		t.Errorf("FromBlocks did not sort: %v", s.Blocks[0])
	}
}

func TestFromBlocksRejectsInvalid(t *testing.T) {
	cases := []struct {
		name   string
		n, r   int
		blocks [][]int
	}{
		{"missing triple", 5, 3, [][]int{{1, 2, 3}}},
		{"duplicate triple", 4, 3, [][]int{{1, 2, 3}, {1, 2, 3}, {1, 2, 4}, {1, 3, 4}, {2, 3, 4}}},
		{"wrong size", 4, 4, [][]int{{1, 2, 3}}},
		{"out of range", 4, 4, [][]int{{1, 2, 3, 5}}},
		{"repeated point", 4, 4, [][]int{{1, 2, 3, 3}}},
		{"bad params", 2, 3, nil},
	}
	for _, c := range cases {
		if _, err := FromBlocks(c.n, c.r, c.blocks); err == nil {
			t.Errorf("%s: FromBlocks succeeded, want error", c.name)
		}
	}
}

func TestWilsonDivisibilityConditions(t *testing.T) {
	// Theorem 6.2 necessary conditions hold for the spherical family:
	// r−2 | n−2, (r−1)(r−2) | (n−1)(n−2), r(r−1)(r−2) | n(n−1)(n−2).
	for _, c := range sphericalCases {
		n, r := c.n, c.r
		if (n-2)%(r-2) != 0 {
			t.Errorf("q=%d: (r-2) does not divide (n-2)", c.q)
		}
		if (n-1)*(n-2)%((r-1)*(r-2)) != 0 {
			t.Errorf("q=%d: (r-1)(r-2) does not divide (n-1)(n-2)", c.q)
		}
		if n*(n-1)*(n-2)%(r*(r-1)*(r-2)) != 0 {
			t.Errorf("q=%d: r(r-1)(r-2) does not divide n(n-1)(n-2)", c.q)
		}
	}
}

func TestBlockCountIdentity(t *testing.T) {
	// |Σ| = C(n,3)/C(r,3) for any Steiner (n,r,3) system.
	for _, c := range sphericalCases {
		s, err := Spherical(c.q)
		if err != nil {
			t.Fatal(err)
		}
		want := intmath.Binomial(s.N, 3) / intmath.Binomial(s.R, 3)
		if got := s.NumBlocks(); got != want {
			t.Errorf("q=%d: %d blocks, identity says %d", c.q, got, want)
		}
	}
}

func TestBlocksWithPairPanicsOnEqual(t *testing.T) {
	s := SQS8()
	defer func() {
		if recover() == nil {
			t.Fatal("BlocksWithPair(2,2) did not panic")
		}
	}()
	s.BlocksWithPair(2, 2)
}

func TestString(t *testing.T) {
	s := SQS8()
	if got := s.String(); got != "Steiner(8, 4, 3) with 14 blocks" {
		t.Errorf("String() = %q", got)
	}
}

func BenchmarkSphericalQ3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Spherical(3); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSphericalLargerPrimePowers(t *testing.T) {
	// q=7 (prime) and q=8 = 2³ (prime power) exercise the PGL₂ orbit
	// construction at scale: GF(49)/GF(64) with 100k–260k Möbius maps.
	if testing.Short() {
		t.Skip("large spherical constructions")
	}
	for _, c := range []struct{ q, n, blocks int }{
		{7, 50, 350},
		{8, 65, 520},
	} {
		s, err := Spherical(c.q)
		if err != nil {
			t.Fatalf("Spherical(%d): %v", c.q, err)
		}
		if s.N != c.n || s.NumBlocks() != c.blocks {
			t.Fatalf("Spherical(%d): n=%d blocks=%d, want n=%d blocks=%d",
				c.q, s.N, s.NumBlocks(), c.n, c.blocks)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("Spherical(%d): %v", c.q, err)
		}
	}
}
