// Package sttsv implements the sequential Symmetric-Tensor-Times-Same-
// Vector kernels of the paper: y = A ×₂ x ×₃ x, elementwise
// y_i = Σ_{j,k} a_ijk · x_j · x_k.
//
// Three full-tensor algorithms are provided:
//
//   - Naive: Algorithm 3, all n³ ternary multiplications on a dense cube,
//     ignoring symmetry; the correctness oracle and the baseline of
//     experiment E5.
//   - Packed: Algorithm 4, iterating only the lower tetrahedron and
//     applying each element to all of its permutations, for a total of
//     n²(n+1)/2 ternary multiplications — about half of Naive.
//   - Sequence: the two-step approach discussed in §8 (first M = A ×₃ x by
//     a matricized product, then y = M·x), which does ≈ 2n³ elementary
//     operations and serves as the arithmetic-cost comparison point.
//
// The block kernels (BlockContribute) compute the partial contributions of
// one tetrahedral-partition block; they are the local computation of
// Algorithm 5 (lines 24–36) and are shared by the blocked sequential
// driver and the parallel implementation.
package sttsv

import (
	"fmt"

	"repro/internal/intmath"
	"repro/internal/tensor"
)

// Stats accumulates operation counts. A nil *Stats is accepted everywhere
// and disables counting.
type Stats struct {
	// TernaryMults counts ternary multiplications a_ijk·x_j·x_k as defined
	// in §3 (the unit of computational cost in the paper's analysis).
	TernaryMults int64
}

func (s *Stats) add(n int64) {
	if s != nil {
		s.TernaryMults += n
	}
}

// Naive computes y = A ×₂ x ×₃ x on a dense cube with Algorithm 3:
// all n³ ternary multiplications, no use of symmetry.
func Naive(a *tensor.Dense, x []float64, stats *Stats) []float64 {
	n := a.N
	if len(x) != n {
		panic(fmt.Sprintf("sttsv: vector length %d, tensor dimension %d", len(x), n))
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := a.Data[i*n*n : (i+1)*n*n]
		s := 0.0
		for j := 0; j < n; j++ {
			xj := x[j]
			t := 0.0
			base := j * n
			for k := 0; k < n; k++ {
				t += row[base+k] * x[k]
			}
			s += t * xj
		}
		y[i] = s
	}
	stats.add(int64(n) * int64(n) * int64(n))
	return y
}

// Packed computes y = A ×₂ x ×₃ x from packed lower-tetrahedron storage
// with Algorithm 4: each stored element contributes to every permutation
// class it represents, for n²(n+1)/2 ternary multiplications total.
func Packed(a *tensor.Symmetric, x []float64, stats *Stats) []float64 {
	n := a.N
	if len(x) != n {
		panic(fmt.Sprintf("sttsv: vector length %d, tensor dimension %d", len(x), n))
	}
	y := make([]float64, n)
	idx := 0
	var count int64
	for i := 0; i < n; i++ {
		xi := x[i]
		for j := 0; j < i; j++ {
			xj := x[j]
			// k < j: strict triples i > j > k.
			for k := 0; k < j; k++ {
				v := a.Data[idx]
				idx++
				xk := x[k]
				y[i] += 2 * v * xj * xk
				y[j] += 2 * v * xi * xk
				y[k] += 2 * v * xi * xj
			}
			count += 3 * int64(j)
			// k == j: i > j == k.
			v := a.Data[idx]
			idx++
			y[i] += v * xj * xj
			y[j] += 2 * v * xi * xj
			count += 2
		}
		// j == i row: k < i gives i == j > k; k == i is central.
		for k := 0; k < i; k++ {
			v := a.Data[idx]
			idx++
			xk := x[k]
			y[i] += 2 * v * xi * xk
			y[k] += v * xi * xi
		}
		count += 2 * int64(i)
		v := a.Data[idx]
		idx++
		y[i] += v * xi * xi
		count++
	}
	stats.add(count)
	return y
}

// PackedTernaryCount returns the exact number of ternary multiplications
// Algorithm 4 performs for dimension n: n²(n+1)/2 (§3).
func PackedTernaryCount(n int) int64 {
	return int64(n) * int64(n) * int64(n+1) / 2
}

// ContractMode3 computes the symmetric matricization product
// M = A ×₃ x, the n×n symmetric matrix M_ij = Σ_k a_ijk·x_k, returned
// row-major. This is the first step of the sequence approach of §8.
func ContractMode3(a *tensor.Symmetric, x []float64) []float64 {
	n := a.N
	if len(x) != n {
		panic(fmt.Sprintf("sttsv: vector length %d, tensor dimension %d", len(x), n))
	}
	m := make([]float64, n*n)
	a.ForEach(func(i, j, k int, v float64) {
		// Element a_ijk (sorted i >= j >= k) contributes v·x_c to M_ab for
		// every permutation (a, b, c) of (i, j, k); equal permutations
		// collapse automatically because we enumerate the distinct ones.
		for _, p := range distinctPerms(i, j, k) {
			m[p[0]*n+p[1]] += v * x[p[2]]
		}
	})
	return m
}

// distinctPerms returns the distinct permutations of a sorted triple.
func distinctPerms(i, j, k int) [][3]int {
	switch intmath.ClassifyTriple(i, j, k) {
	case intmath.TripleDiagonal:
		return [][3]int{{i, i, i}}
	case intmath.TriplePairHigh: // i == j > k
		return [][3]int{{i, i, k}, {i, k, i}, {k, i, i}}
	case intmath.TriplePairLow: // i > j == k
		return [][3]int{{i, j, j}, {j, i, j}, {j, j, i}}
	default:
		return [][3]int{{i, j, k}, {i, k, j}, {j, i, k}, {j, k, i}, {k, i, j}, {k, j, i}}
	}
}

// Sequence computes y = A ×₂ x ×₃ x via the two-step approach of §8:
// M = A ×₃ x followed by y = M·x (≈ 2n³ + 2n² elementary operations, no
// reuse of symmetry in the second step).
func Sequence(a *tensor.Symmetric, x []float64) []float64 {
	n := a.N
	m := ContractMode3(a, x)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		row := m[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			s += row[j] * x[j]
		}
		y[i] = s
	}
	return y
}

// Dot returns xᵀy; with y = A ×₂ x ×₃ x this is λ = A ×₁ x ×₂ x ×₃ x
// (line 8 of Algorithm 1).
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("sttsv: Dot of lengths %d and %d", len(x), len(y)))
	}
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}
