package sttsv

import (
	"fmt"

	"repro/internal/intmath"
	"repro/internal/tensor"
)

// Operator is a reusable blocked STTSV applier: it extracts all
// tetrahedral blocks of a tensor once into contiguous kind-grouped storage
// (tensor.BlockPacked) and applies y = A ×₂ x ×₃ x repeatedly without
// re-extraction, through the register-tiled kernels and, optionally, the
// multicore Executor. This is the local-compute engine behind repeated
// STTSV applications — power iterations, CP gradient sweeps — where the
// seed paid full repacking cost per application.
//
// An Operator holds scratch buffers and is NOT safe for concurrent Apply
// calls; share the tensor by building one Operator per goroutine (the
// packed blocks are read-only and could be shared, but the simple contract
// is one Operator per caller).
type Operator struct {
	n, m, b int
	packed  *tensor.BlockPacked
	exec    *Executor
	xp, yp  []float64
}

// NewOperator packs the tensor on an m×m×m block grid and returns the
// reusable applier. workers selects the local-compute parallelism:
// 1 is sequential, 0 selects GOMAXPROCS.
func NewOperator(a *tensor.Symmetric, m, workers int) *Operator {
	if m < 1 {
		panic(fmt.Sprintf("sttsv: NewOperator with m=%d", m))
	}
	b := intmath.CeilDiv(a.N, m)
	if b < 1 {
		b = 1 // n == 0 still needs a well-formed (empty) grid
	}
	return &Operator{
		n:      a.N,
		m:      m,
		b:      b,
		packed: tensor.PackTetrahedron(a, m, b),
		exec:   NewExecutor(workers),
		xp:     make([]float64, m*b),
		yp:     make([]float64, m*b),
	}
}

// N returns the tensor dimension.
func (op *Operator) N() int { return op.n }

// M returns the block-grid edge (number of row blocks).
func (op *Operator) M() int { return op.m }

// B returns the block edge length ceil(n/m).
func (op *Operator) B() int { return op.b }

// Workers returns the local-compute worker count.
func (op *Operator) Workers() int { return op.exec.Workers() }

// Words returns the packed block storage in 8-byte words.
func (op *Operator) Words() int { return op.packed.Words() }

// Packed exposes the block-packed tensor (read-only by convention) for
// callers that iterate the blocks themselves, e.g. benchmark baselines.
func (op *Operator) Packed() *tensor.BlockPacked { return op.packed }

// Apply computes y = A ×₂ x ×₃ x, reusing the packed blocks. The output
// bits are reproducible: for a fixed Operator configuration (tensor, m,
// workers) the same x always yields the same y.
func (op *Operator) Apply(x []float64, stats *Stats) []float64 {
	if len(x) != op.n {
		panic(fmt.Sprintf("sttsv: vector length %d, tensor dimension %d", len(x), op.n))
	}
	copy(op.xp, x)
	for i := op.n; i < len(op.xp); i++ {
		op.xp[i] = 0
	}
	for i := range op.yp {
		op.yp[i] = 0
	}
	b := op.b
	op.exec.Contribute(op.packed.Blocks, b,
		func(i int) []float64 { return op.xp[i*b : (i+1)*b] },
		func(i int) []float64 { return op.yp[i*b : (i+1)*b] },
		stats)
	y := make([]float64, op.n)
	copy(y, op.yp)
	return y
}

// BlockedParallel computes y = A ×₂ x ×₃ x through a one-shot Operator:
// the multicore counterpart of Blocked. For repeated applications build
// the Operator once and call Apply.
func BlockedParallel(a *tensor.Symmetric, x []float64, m, workers int, stats *Stats) []float64 {
	return NewOperator(a, m, workers).Apply(x, stats)
}
