package sttsv

import (
	"math"
	"math/rand"
	"testing"
)

func randCP(n, r int, rng *rand.Rand) *CPOperator {
	weights := make([]float64, r)
	vectors := make([][]float64, r)
	for k := range weights {
		weights[k] = rng.NormFloat64()
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		vectors[k] = v
	}
	op, err := NewCPOperator(weights, vectors)
	if err != nil {
		panic(err)
	}
	return op
}

// TestCPApplyMatchesDense: the O(nr) apply must agree with the dense
// kernel on the materialized CP tensor (to rounding; the dense path sums
// C(n+2,3) terms in a completely different order).
func TestCPApplyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(12) + 3
		r := rng.Intn(4) + 1
		op := randCP(n, r, rng)
		a, err := op.Dense()
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := Packed(a, x, nil)
		got := op.Apply(x, nil)
		for i := range want {
			scale := math.Max(1, math.Abs(want[i]))
			if math.Abs(got[i]-want[i]) > 1e-9*scale {
				t.Fatalf("trial %d (n=%d r=%d): CP apply differs at %d: %g vs %g", trial, n, r, i, got[i], want[i])
			}
		}
	}
}

// TestCPApplyChunkedStable: chunked applies agree with the flat apply to
// rounding (the projection is re-associated per chunk) and are exactly
// reproducible for a fixed chunk count — the property that makes
// ApplyChunked(x, P) the bit-exact oracle for a P-rank session.
func TestCPApplyChunkedStable(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n, r := 101, 5
	op := randCP(n, r, rng)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	flat := op.Apply(x, nil)
	for _, chunks := range []int{1, 2, 3, 7, 10, 101, 200} {
		got := op.ApplyChunked(x, chunks, nil)
		for i := range flat {
			scale := math.Max(1, math.Abs(flat[i]))
			if math.Abs(got[i]-flat[i]) > 1e-12*scale {
				t.Fatalf("chunks=%d: differs at %d: %g vs %g", chunks, i, got[i], flat[i])
			}
		}
		again := op.ApplyChunked(x, chunks, nil)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(again[i]) {
				t.Fatalf("chunks=%d: not reproducible at %d", chunks, i)
			}
		}
	}
}

// TestCPWorkAccounting pins the 2nr ternary-equivalent convention.
func TestCPWorkAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	op := randCP(64, 7, rng)
	if op.TernaryEquiv() != 2*64*7 {
		t.Fatalf("TernaryEquiv = %d, want %d", op.TernaryEquiv(), 2*64*7)
	}
	var st Stats
	x := make([]float64, 64)
	op.Apply(x, &st)
	op.ApplyChunked(x, 4, &st)
	if st.TernaryMults != 2*op.TernaryEquiv() {
		t.Fatalf("stats counted %d, want %d", st.TernaryMults, 2*op.TernaryEquiv())
	}
}

// TestCPOperatorValidation: shape errors must be rejected.
func TestCPOperatorValidation(t *testing.T) {
	if _, err := NewCPOperator(nil, nil); err == nil {
		t.Error("empty operator accepted")
	}
	if _, err := NewCPOperator([]float64{1}, [][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Error("weight/vector count mismatch accepted")
	}
	if _, err := NewCPOperator([]float64{1, 2}, [][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged factor vectors accepted")
	}
}
