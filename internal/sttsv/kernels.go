package sttsv

import (
	"repro/internal/tensor"
)

// This file holds the register-tiled block kernels — the production local-
// compute path of Algorithm 5. The seed kernel (BlockContributeScalar)
// walks elements one at a time and touches yK once per stored element per
// row; the tiled kernels instead process panels of four rows at once
// through two micro-kernels, so each yK element is read and written once
// per four rows and the four running dot products live in registers:
//
//   - panelDotAxpy4: four same-length rows r0..r3, one pass over dk
//     computing the four dots s_t = Σ r_t[dk]·xK[dk] while accumulating the
//     fused update yK[dk] += c0·r0[dk] + c1·r1[dk] + c2·r2[dk] + c3·r3[dk];
//   - rowDotAxpy: the single-row remainder, 4-wide unrolled with four
//     independent dot accumulators.
//
// The tiling axis differs per kind to keep panel rows the same length:
// OffDiagonal and DiagPairHigh tile over dj (rows span the full dk range),
// DiagPairLow tiles over di (its di-planes are congruent triangles), and
// Central — of which there are only m per tensor versus Θ(m³) off-diagonal
// blocks — uses the unrolled single-row micro-kernel on its triangular
// rows. All kernels only ever accumulate into y, so the aliasing contract
// of BlockContributeScalar (shared slices when block coordinates coincide)
// is preserved.
//
// Determinism: every kernel is a fixed sequential instruction stream — the
// output bits depend only on the inputs, never on scheduling. Relative to
// the scalar reference the summation order is reassociated, so results may
// differ from it (and from Packed) by a few ulps; the equivalence tests
// pin the tolerance.

// panelDotAxpy4 is the 4-row fused dot/axpy micro-kernel. All four rows,
// xk and yk must have the same length.
func panelDotAxpy4(r0, r1, r2, r3, xk, yk []float64, c0, c1, c2, c3 float64) (s0, s1, s2, s3 float64) {
	l := len(r0)
	if l == 0 {
		return
	}
	r1 = r1[:l]
	r2 = r2[:l]
	r3 = r3[:l]
	xk = xk[:l]
	yk = yk[:l]
	for k := 0; k < l; k++ {
		v0, v1, v2, v3 := r0[k], r1[k], r2[k], r3[k]
		x := xk[k]
		s0 += v0 * x
		s1 += v1 * x
		s2 += v2 * x
		s3 += v3 * x
		yk[k] += c0*v0 + c1*v1 + c2*v2 + c3*v3
	}
	return
}

// rowDotAxpy returns Σ r[k]·xk[k] while accumulating yk[k] += c·r[k],
// unrolled 4-wide with independent dot accumulators.
func rowDotAxpy(r, xk, yk []float64, c float64) float64 {
	l := len(r)
	xk = xk[:l]
	yk = yk[:l]
	var s0, s1, s2, s3 float64
	k := 0
	for ; k+4 <= l; k += 4 {
		v0, v1, v2, v3 := r[k], r[k+1], r[k+2], r[k+3]
		s0 += v0 * xk[k]
		s1 += v1 * xk[k+1]
		s2 += v2 * xk[k+2]
		s3 += v3 * xk[k+3]
		yk[k] += c * v0
		yk[k+1] += c * v1
		yk[k+2] += c * v2
		yk[k+3] += c * v3
	}
	for ; k < l; k++ {
		v := r[k]
		s0 += v * xk[k]
		yk[k] += c * v
	}
	return (s0 + s1) + (s2 + s3)
}

// BlockContribute accumulates the contributions of one tetrahedral-
// partition block into the output row blocks — the local computation of
// Algorithm 5 (lines 24–36), dispatched to the register-tiled kernel for
// the block's kind. Semantics (slice contract, aliasing, zero padding,
// stats accounting) match BlockContributeScalar; only the floating-point
// summation order differs.
func BlockContribute(blk *tensor.Block, xI, xJ, xK, yI, yJ, yK []float64, stats *Stats) {
	checkBlockLens(blk, xI, xJ, xK, yI, yJ, yK)
	switch blk.Kind {
	case tensor.OffDiagonal:
		contributeOffDiagonal(blk, xI, xJ, xK, yI, yJ, yK)
	case tensor.DiagPairHigh:
		contributeDiagPairHigh(blk, xI, xJ, xK, yI, yJ, yK)
	case tensor.DiagPairLow:
		contributeDiagPairLow(blk, xI, xJ, xK, yI, yJ, yK)
	case tensor.Central:
		contributeCentral(blk, xI, xJ, xK, yI, yJ, yK)
	default:
		panic("sttsv: unknown block kind")
	}
	stats.add(BlockTernaryCount(blk.Kind, blk.B))
}

// contributeOffDiagonal handles I > J > K: b³ stored values, rows of
// length b, tiled over dj in panels of four.
func contributeOffDiagonal(blk *tensor.Block, xI, xJ, xK, yI, yJ, yK []float64) {
	b := blk.B
	data := blk.Data
	for di := 0; di < b; di++ {
		xi := xI[di]
		txi2 := 2 * xi
		base := di * b * b
		acc := 0.0
		dj := 0
		for ; dj+4 <= b; dj += 4 {
			o := base + dj*b
			xj0, xj1, xj2, xj3 := xJ[dj], xJ[dj+1], xJ[dj+2], xJ[dj+3]
			s0, s1, s2, s3 := panelDotAxpy4(
				data[o:o+b], data[o+b:o+2*b], data[o+2*b:o+3*b], data[o+3*b:o+4*b],
				xK, yK, txi2*xj0, txi2*xj1, txi2*xj2, txi2*xj3)
			acc += s0*xj0 + s1*xj1 + s2*xj2 + s3*xj3
			yJ[dj] += txi2 * s0
			yJ[dj+1] += txi2 * s1
			yJ[dj+2] += txi2 * s2
			yJ[dj+3] += txi2 * s3
		}
		for ; dj < b; dj++ {
			xj := xJ[dj]
			o := base + dj*b
			s := rowDotAxpy(data[o:o+b], xK, yK, txi2*xj)
			acc += s * xj
			yJ[dj] += txi2 * s
		}
		yI[di] += 2 * acc
	}
}

// contributeDiagPairHigh handles I == J > K: rows (di, dj <= di) of length
// b; the dj < di rows are strict triples tiled over dj, the dj == di row
// carries the i == j > k coefficient xi².
func contributeDiagPairHigh(blk *tensor.Block, xI, xJ, xK, yI, yJ, yK []float64) {
	b := blk.B
	data := blk.Data
	for di := 0; di < b; di++ {
		xi := xI[di]
		txi2 := 2 * xi
		base := di * (di + 1) / 2 * b
		acc := 0.0 // Σ_{dj<di} s_dj·xJ[dj]; folded into yI[di] at the end
		dj := 0
		for ; dj+4 <= di; dj += 4 {
			o := base + dj*b
			xj0, xj1, xj2, xj3 := xJ[dj], xJ[dj+1], xJ[dj+2], xJ[dj+3]
			s0, s1, s2, s3 := panelDotAxpy4(
				data[o:o+b], data[o+b:o+2*b], data[o+2*b:o+3*b], data[o+3*b:o+4*b],
				xK, yK, txi2*xj0, txi2*xj1, txi2*xj2, txi2*xj3)
			acc += s0*xj0 + s1*xj1 + s2*xj2 + s3*xj3
			yJ[dj] += txi2 * s0
			yJ[dj+1] += txi2 * s1
			yJ[dj+2] += txi2 * s2
			yJ[dj+3] += txi2 * s3
		}
		for ; dj < di; dj++ {
			xj := xJ[dj]
			o := base + dj*b
			s := rowDotAxpy(data[o:o+b], xK, yK, txi2*xj)
			acc += s * xj
			yJ[dj] += txi2 * s
		}
		// dj == di row.
		o := base + di*b
		s := rowDotAxpy(data[o:o+b], xK, yK, xi*xi)
		yI[di] += 2*acc + 2*s*xi
	}
}

// contributeDiagPairLow handles I > J == K: every di-plane is the same
// b(b+1)/2-entry triangle over (dj >= dk), so the panel axis is di — four
// congruent triangles advance in lockstep through panelDotAxpy4 with
// coefficients 2·xj·xi_t.
func contributeDiagPairLow(blk *tensor.Block, xI, xJ, xK, yI, yJ, yK []float64) {
	b := blk.B
	data := blk.Data
	tri := b * (b + 1) / 2
	di := 0
	for ; di+4 <= b; di += 4 {
		xi0, xi1, xi2, xi3 := xI[di], xI[di+1], xI[di+2], xI[di+3]
		b0 := di * tri
		b1, b2, b3 := b0+tri, b0+2*tri, b0+3*tri
		off := 0
		for dj := 0; dj < b; dj++ {
			xj := xJ[dj]
			txj2 := 2 * xj
			s0, s1, s2, s3 := panelDotAxpy4(
				data[b0+off:b0+off+dj], data[b1+off:b1+off+dj],
				data[b2+off:b2+off+dj], data[b3+off:b3+off+dj],
				xK, yK, txj2*xi0, txj2*xi1, txj2*xi2, txj2*xi3)
			v0, v1, v2, v3 := data[b0+off+dj], data[b1+off+dj], data[b2+off+dj], data[b3+off+dj]
			xjxj := xj * xj
			yI[di] += 2*s0*xj + v0*xjxj
			yI[di+1] += 2*s1*xj + v1*xjxj
			yI[di+2] += 2*s2*xj + v2*xjxj
			yI[di+3] += 2*s3*xj + v3*xjxj
			yJ[dj] += 2*(s0*xi0+s1*xi1+s2*xi2+s3*xi3) + txj2*(v0*xi0+v1*xi1+v2*xi2+v3*xi3)
			off += dj + 1
		}
	}
	for ; di < b; di++ {
		xi := xI[di]
		base := di * tri
		off := 0
		for dj := 0; dj < b; dj++ {
			xj := xJ[dj]
			s := rowDotAxpy(data[base+off:base+off+dj], xK, yK, 2*xi*xj)
			v := data[base+off+dj]
			yI[di] += 2*s*xj + v*xj*xj
			yJ[dj] += 2*s*xi + 2*v*xi*xj
			off += dj + 1
		}
	}
}

// contributeCentral handles I == J == K. Central blocks number only m per
// tensor (versus Θ(m³) off-diagonal), and their triangular rows vary in
// length, so the win here is the unrolled single-row micro-kernel rather
// than panel tiling.
func contributeCentral(blk *tensor.Block, xI, xJ, xK, yI, yJ, yK []float64) {
	b := blk.B
	data := blk.Data
	off := 0
	for di := 0; di < b; di++ {
		xi := xI[di]
		for dj := 0; dj < di; dj++ {
			xj := xJ[dj]
			s := rowDotAxpy(data[off:off+dj], xK, yK, 2*xi*xj)
			v := data[off+dj] // dk == dj: i > j == k
			yI[di] += 2*s*xj + v*xj*xj
			yJ[dj] += 2*s*xi + 2*v*xi*xj
			off += dj + 1
		}
		// dj == di row: dk < di carries the i == j > k coefficient xi²,
		// dk == di is the central element.
		s := rowDotAxpy(data[off:off+di], xK, yK, xi*xi)
		v := data[off+di]
		yI[di] += 2*s*xi + v*xi*xi
		off += di + 1
	}
}
