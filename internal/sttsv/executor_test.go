package sttsv

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestExecutorMatchesSequential: the multicore executor must agree with
// the sequential blocked driver (same tiled kernels, different summation
// grouping across workers) for every worker count, and count exactly the
// same ternary multiplications.
func TestExecutorMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, c := range []struct{ n, m int }{{37, 5}, {24, 4}, {9, 3}} {
		a := tensor.Random(c.n, rng)
		x := randVec(c.n, rng)
		var stSeq Stats
		want := Blocked(a, x, c.m, &stSeq)
		for _, workers := range []int{1, 2, 3, 4, 7, 16} {
			var st Stats
			got := BlockedParallel(a, x, c.m, workers, &st)
			if st.TernaryMults != stSeq.TernaryMults {
				t.Fatalf("n=%d m=%d workers=%d: stats %d want %d",
					c.n, c.m, workers, st.TernaryMults, stSeq.TernaryMults)
			}
			for i := range got {
				if d := math.Abs(got[i] - want[i]); d > 1e-11*(1+math.Abs(want[i])) {
					t.Fatalf("n=%d m=%d workers=%d: y[%d]=%g want %g",
						c.n, c.m, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestExecutorDeterministicBits is the repeated-run determinism check the
// acceptance criteria require (run under -race in CI): for a fixed worker
// count the executor must produce identical bytes on every run — the
// static round-robin block deal, private per-worker accumulators and the
// fixed pairwise tree reduction leave no scheduling dependence. A second
// independently-packed Operator must reproduce the same bits too.
func TestExecutorDeterministicBits(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	n, m, workers := 41, 6, 4
	a := tensor.Random(n, rng)
	x := randVec(n, rng)
	op := NewOperator(a, m, workers)
	ref := op.Apply(x, nil)
	for run := 0; run < 5; run++ {
		got := op.Apply(x, nil)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("run %d: y[%d] bits %x differ from %x",
					run, i, math.Float64bits(got[i]), math.Float64bits(ref[i]))
			}
		}
	}
	op2 := NewOperator(a, m, workers)
	got := op2.Apply(x, nil)
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
			t.Fatalf("fresh operator: y[%d] bits differ", i)
		}
	}
}

// TestOperatorMatchesPacked: the reusable operator against the Algorithm 4
// oracle, with padding and repeated applications on different vectors (the
// scratch state must fully reset between applications).
func TestOperatorMatchesPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for _, c := range []struct{ n, m, workers int }{
		{12, 4, 1}, {10, 4, 2}, {11, 5, 4}, {25, 3, 0}, {1, 3, 2},
	} {
		a := tensor.Random(c.n, rng)
		op := NewOperator(a, c.m, c.workers)
		for rep := 0; rep < 3; rep++ {
			x := randVec(c.n, rng)
			want := Packed(a, x, nil)
			var st Stats
			got := op.Apply(x, &st)
			if d := maxAbsDiff(got, want); d > tol {
				t.Fatalf("n=%d m=%d workers=%d rep=%d: differs by %g", c.n, c.m, c.workers, rep, d)
			}
			padded := op.M() * op.B()
			if want := PackedTernaryCount(padded); st.TernaryMults != want {
				t.Fatalf("n=%d m=%d: counted %d want %d", c.n, c.m, st.TernaryMults, want)
			}
		}
	}
}

// TestOperatorGeometry pins the derived grid parameters.
func TestOperatorGeometry(t *testing.T) {
	a := tensor.Random(10, rand.New(rand.NewSource(83)))
	op := NewOperator(a, 4, 2)
	if op.N() != 10 || op.M() != 4 || op.B() != 3 || op.Workers() != 2 {
		t.Fatalf("geometry: n=%d m=%d b=%d workers=%d", op.N(), op.M(), op.B(), op.Workers())
	}
	// Packed words must equal the tetrahedral total of the padded grid.
	want := 0
	tensor.BlocksOfTetrahedron(4, func(I, J, K int) {
		want += tensor.BlockLen(tensor.KindOfBlock(I, J, K), 3)
	})
	if op.Words() != want {
		t.Fatalf("words %d want %d", op.Words(), want)
	}
}

// TestBlockedScratchReuse: Blocked must stream blocks through one scratch
// buffer — its allocation count must not grow with the number of blocks
// (m³/6 blocks would each have allocated a fresh Block in the seed).
func TestBlockedScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	n := 24
	a := tensor.Random(n, rng)
	x := randVec(n, rng)
	allocsAt := func(m int) float64 {
		return testing.AllocsPerRun(10, func() { Blocked(a, x, m, nil) })
	}
	small, large := allocsAt(2), allocsAt(8) // 4 blocks vs 120 blocks
	if large > small+2 {
		t.Fatalf("allocations grow with block count: m=2 → %.0f, m=8 → %.0f", small, large)
	}
	if large > 8 {
		t.Fatalf("Blocked allocates %.0f objects per run, want a small constant", large)
	}
}
