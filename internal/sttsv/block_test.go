package sttsv

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/intmath"
	"repro/internal/tensor"
)

func TestBlockedMatchesPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, c := range []struct{ n, m int }{
		{12, 4}, {12, 3}, {12, 1}, {9, 3}, {16, 2}, {7, 7},
	} {
		a := tensor.Random(c.n, rng)
		x := randVec(c.n, rng)
		want := Packed(a, x, nil)
		got := Blocked(a, x, c.m, nil)
		if d := maxAbsDiff(got, want); d > tol {
			t.Fatalf("n=%d m=%d: Blocked differs by %g", c.n, c.m, d)
		}
	}
}

func TestBlockedWithPadding(t *testing.T) {
	// n not divisible by m: the padded region must not change the result.
	rng := rand.New(rand.NewSource(31))
	for _, c := range []struct{ n, m int }{
		{10, 4}, {10, 3}, {11, 5}, {5, 4}, {1, 3},
	} {
		a := tensor.Random(c.n, rng)
		x := randVec(c.n, rng)
		want := Packed(a, x, nil)
		got := Blocked(a, x, c.m, nil)
		if d := maxAbsDiff(got, want); d > tol {
			t.Fatalf("n=%d m=%d: padded Blocked differs by %g", c.n, c.m, d)
		}
	}
}

func TestBlockContributePerKind(t *testing.T) {
	// Each block kind in isolation: build a tensor that is zero outside
	// one block and compare block contribution against Packed on the full
	// tensor.
	rng := rand.New(rand.NewSource(32))
	b, m := 3, 4
	n := b * m
	for _, coords := range [][3]int{{3, 2, 1}, {2, 2, 1}, {2, 1, 1}, {1, 1, 1}} {
		I, J, K := coords[0], coords[1], coords[2]
		a := tensor.NewSymmetric(n)
		// Fill only the chosen block's lower-tetra entries.
		probe := tensor.NewBlock(I, J, K, b)
		probe.ForEach(func(di, dj, dk int, _ float64) {
			gi, gj, gk := probe.GlobalIndices(di, dj, dk)
			a.Set(gi, gj, gk, rng.NormFloat64())
		})
		x := randVec(n, rng)
		want := Packed(a, x, nil)

		blk := tensor.ExtractBlock(a, I, J, K, b)
		y := make([]float64, n)
		BlockContribute(blk,
			x[I*b:(I+1)*b], x[J*b:(J+1)*b], x[K*b:(K+1)*b],
			y[I*b:(I+1)*b], y[J*b:(J+1)*b], y[K*b:(K+1)*b], nil)
		if d := maxAbsDiff(y, want); d > tol {
			t.Fatalf("block (%d,%d,%d) kind %v: differs by %g", I, J, K, blk.Kind, d)
		}
	}
}

func TestBlockTernaryCount(t *testing.T) {
	// Exact per-kind counts from §7.1.
	for b := 1; b <= 6; b++ {
		bb := int64(b)
		if got, want := BlockTernaryCount(tensor.OffDiagonal, b), 3*bb*bb*bb; got != want {
			t.Errorf("off-diag b=%d: %d want %d", b, got, want)
		}
		if got, want := BlockTernaryCount(tensor.DiagPairHigh, b), 3*bb*bb*(bb-1)/2+2*bb*bb; got != want {
			t.Errorf("pair-high b=%d: %d want %d", b, got, want)
		}
		if got, want := BlockTernaryCount(tensor.Central, b), bb*(bb-1)*(bb-2)/2+2*bb*(bb-1)+bb; got != want {
			t.Errorf("central b=%d: %d want %d", b, got, want)
		}
	}
}

func TestBlockTernaryCountsSumToPackedCount(t *testing.T) {
	// Summing block counts over the whole block tetrahedron must give
	// Algorithm 4's total n²(n+1)/2 on the padded dimension.
	for _, c := range []struct{ m, b int }{{4, 3}, {3, 5}, {5, 2}, {2, 7}} {
		var total int64
		tensor.BlocksOfTetrahedron(c.m, func(I, J, K int) {
			total += BlockTernaryCount(tensor.KindOfBlock(I, J, K), c.b)
		})
		n := c.m * c.b
		if want := PackedTernaryCount(n); total != want {
			t.Errorf("m=%d b=%d: block sum %d, want %d", c.m, c.b, total, want)
		}
	}
}

func TestBlockedStatsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n, m := 12, 4
	a := tensor.Random(n, rng)
	x := randVec(n, rng)
	var st Stats
	Blocked(a, x, m, &st)
	if want := PackedTernaryCount(n); st.TernaryMults != want {
		t.Fatalf("Blocked counted %d, want %d", st.TernaryMults, want)
	}
}

func TestBlockContributeAliasedSlices(t *testing.T) {
	// For a central block the caller passes the same slices three times;
	// verify explicitly that accumulation under aliasing is correct.
	rng := rand.New(rand.NewSource(34))
	b := 4
	a := tensor.Random(b, rng) // dimension b tensor = single central block
	x := randVec(b, rng)
	want := Packed(a, x, nil)
	blk := tensor.ExtractBlock(a, 0, 0, 0, b)
	y := make([]float64, b)
	BlockContribute(blk, x, x, x, y, y, y, nil)
	if d := maxAbsDiff(y, want); d > tol {
		t.Fatalf("aliased central block differs by %g", d)
	}
}

func TestBlockContributePanicsOnBadLengths(t *testing.T) {
	blk := tensor.NewBlock(2, 1, 0, 3)
	good := make([]float64, 3)
	bad := make([]float64, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BlockContribute(blk, good, good, bad, good, good, good, nil)
}

func TestBlockedPanics(t *testing.T) {
	a := tensor.NewSymmetric(4)
	for name, fn := range map[string]func(){
		"bad m":      func() { Blocked(a, make([]float64, 4), 0, nil) },
		"bad vector": func() { Blocked(a, make([]float64, 3), 2, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBlockedTotalWorkWithPadding(t *testing.T) {
	// Work counted by Blocked equals the padded Algorithm 4 total.
	rng := rand.New(rand.NewSource(35))
	n, m := 10, 4 // pads to 12
	a := tensor.Random(n, rng)
	x := randVec(n, rng)
	var st Stats
	Blocked(a, x, m, &st)
	padded := intmath.RoundUp(n, m) // b = ceil(10/4) = 3, padded = 12
	if padded != 12 {
		t.Fatalf("test setup wrong: padded = %d", padded)
	}
	if want := PackedTernaryCount(12); st.TernaryMults != want {
		t.Fatalf("padded Blocked counted %d, want %d", st.TernaryMults, want)
	}
}

// Per-kind BlockContribute benchmarks live in kernel_bench_test.go.

func BenchmarkBlocked(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n, m := 96, 4
	a := tensor.Random(n, rng)
	x := randVec(n, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Blocked(a, x, m, nil)
	}
}

func TestBlockContributeZeroPaddedEquivalence(t *testing.T) {
	// Property: kernels on a zero block contribute nothing.
	for _, coords := range [][3]int{{3, 2, 1}, {2, 2, 1}, {2, 1, 1}, {1, 1, 1}} {
		blk := tensor.NewBlock(coords[0], coords[1], coords[2], 3)
		x := []float64{1, 2, 3}
		y := make([]float64, 3)
		BlockContribute(blk, x, x, x, y, y, y, nil)
		for i, v := range y {
			if v != 0 {
				t.Fatalf("zero block %v contributed y[%d]=%g", blk.Kind, i, v)
			}
		}
	}
}

func TestMathSanity(t *testing.T) {
	// Guard against NaN leaks from kernels on adversarial values.
	b := 3
	blk := tensor.NewBlock(2, 1, 0, b)
	for i := range blk.Data {
		blk.Data[i] = math.MaxFloat64 / 1e10
	}
	x := []float64{1e-200, 1e-200, 1e-200}
	y := make([]float64, b)
	BlockContribute(blk, x, x, x, y, y, y, nil)
	for _, v := range y {
		if math.IsNaN(v) {
			t.Fatal("NaN from finite inputs")
		}
	}
}
