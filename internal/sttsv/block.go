package sttsv

import (
	"fmt"

	"repro/internal/intmath"
	"repro/internal/tensor"
)

// checkBlockLens validates the slice contract shared by all block kernels.
func checkBlockLens(blk *tensor.Block, xI, xJ, xK, yI, yJ, yK []float64) {
	b := blk.B
	if len(xI) != b || len(xJ) != b || len(xK) != b || len(yI) != b || len(yJ) != b || len(yK) != b {
		panic(fmt.Sprintf("sttsv: BlockContribute slice lengths (%d,%d,%d,%d,%d,%d), want %d",
			len(xI), len(xJ), len(xK), len(yI), len(yJ), len(yK), b))
	}
}

// BlockContributeScalar is the pure-scalar reference kernel: the direct
// i-j-k triple-loop transcription of Algorithm 5's local computation
// (lines 24–36). It is kept verbatim from the seed as the oracle the
// register-tiled kernels (BlockContribute) are tested against — it is
// bit-for-bit the seed behavior, while the tiled kernels reassociate
// sums (multi-accumulator dots, 4-wide fused updates) and so may differ
// from it by a few ulps.
//
// For a block with coordinates (I, J, K) the caller passes the three input
// row blocks x[I], x[J], x[K] and the three output row blocks y[I], y[J],
// y[K] (aliased slices when block coordinates coincide — the kernel only
// ever accumulates, so aliasing is safe). Every slice must have length
// blk.B. Zero padding is transparent: padded tensor entries are zero, so
// their contributions vanish.
func BlockContributeScalar(blk *tensor.Block, xI, xJ, xK, yI, yJ, yK []float64, stats *Stats) {
	checkBlockLens(blk, xI, xJ, xK, yI, yJ, yK)
	b := blk.B
	data := blk.Data
	switch blk.Kind {
	case tensor.OffDiagonal:
		// All elements are strict global triples i > j > k: each performs
		// 3 ternary multiplications (one per output row block).
		idx := 0
		for di := 0; di < b; di++ {
			xi := xI[di]
			acc := 0.0
			for dj := 0; dj < b; dj++ {
				xj := xJ[dj]
				s := 0.0
				txi2 := 2 * xi
				txij2 := 2 * xi * xj
				for dk := 0; dk < b; dk++ {
					v := data[idx]
					idx++
					s += v * xK[dk]
					yK[dk] += txij2 * v
				}
				acc += s * xj
				yJ[dj] += txi2 * s
			}
			yI[di] += 2 * acc
		}
	case tensor.DiagPairHigh:
		// I == J > K: local di >= dj; di > dj is a strict global triple,
		// di == dj is the i == j > k case of Algorithm 4.
		idx := 0
		for di := 0; di < b; di++ {
			xi := xI[di]
			for dj := 0; dj < di; dj++ {
				xj := xJ[dj]
				s := 0.0
				txij2 := 2 * xi * xj
				for dk := 0; dk < b; dk++ {
					v := data[idx]
					idx++
					s += v * xK[dk]
					yK[dk] += txij2 * v
				}
				yI[di] += 2 * s * xj
				yJ[dj] += 2 * s * xi
			}
			// di == dj.
			s := 0.0
			xi2 := xi * xi
			for dk := 0; dk < b; dk++ {
				v := data[idx]
				idx++
				s += v * xK[dk]
				yK[dk] += xi2 * v
			}
			yI[di] += 2 * s * xi
		}
	case tensor.DiagPairLow:
		// I > J == K: local dj >= dk; dj > dk strict, dj == dk is the
		// i > j == k case.
		idx := 0
		for di := 0; di < b; di++ {
			xi := xI[di]
			for dj := 0; dj < b; dj++ {
				xj := xJ[dj]
				txij2 := 2 * xi * xj
				s := 0.0
				for dk := 0; dk < dj; dk++ {
					v := data[idx]
					idx++
					s += v * xK[dk]
					yK[dk] += txij2 * v
				}
				v := data[idx]
				idx++
				yI[di] += 2*s*xj + v*xj*xj
				yJ[dj] += 2*s*xi + 2*v*xi*xj
			}
		}
	case tensor.Central:
		// I == J == K: full element-level classification.
		idx := 0
		for di := 0; di < b; di++ {
			xi := xI[di]
			for dj := 0; dj < di; dj++ {
				xj := xJ[dj]
				txij2 := 2 * xi * xj
				s := 0.0
				for dk := 0; dk < dj; dk++ {
					v := data[idx]
					idx++
					s += v * xK[dk]
					yK[dk] += txij2 * v
				}
				v := data[idx] // dk == dj: i > j == k
				idx++
				yI[di] += 2*s*xj + v*xj*xj
				yJ[dj] += 2*s*xi + 2*v*xi*xj
			}
			// dj == di row.
			xi2 := xi * xi
			s := 0.0
			for dk := 0; dk < di; dk++ {
				v := data[idx] // i == j > k
				idx++
				s += v * xK[dk]
				yK[dk] += xi2 * v
			}
			v := data[idx] // central element
			idx++
			yI[di] += 2*s*xi + v*xi2
		}
	default:
		panic("sttsv: unknown block kind")
	}
	stats.add(BlockTernaryCount(blk.Kind, b))
}

// BlockTernaryCount returns the exact number of ternary multiplications
// performed for one block of the given kind and edge b (§7.1): 3b³ for an
// off-diagonal block, 3b²(b−1)/2 + 2b² for a non-central diagonal block and
// 3·b(b−1)(b−2)/6 + 2b(b−1) + b for a central diagonal block.
func BlockTernaryCount(kind tensor.BlockKind, b int) int64 {
	bb := int64(b)
	switch kind {
	case tensor.OffDiagonal:
		return 3 * bb * bb * bb
	case tensor.DiagPairHigh, tensor.DiagPairLow:
		return 3*bb*bb*(bb-1)/2 + 2*bb*bb
	case tensor.Central:
		return 3*bb*(bb-1)*(bb-2)/6 + 2*bb*(bb-1) + bb
	}
	panic("sttsv: unknown block kind")
}

// Blocked computes y = A ×₂ x ×₃ x by partitioning the (zero-padded)
// tensor into an m×m×m grid of blocks and summing BlockContribute over the
// block lower tetrahedron. It validates the block kernels against Packed
// and is the sequential skeleton of Algorithm 5's local phase. Blocks are
// streamed through one scratch buffer (no per-block allocation); for
// repeated applications of the same tensor use Operator, which extracts
// all blocks once and can additionally run multicore.
func Blocked(a *tensor.Symmetric, x []float64, m int, stats *Stats) []float64 {
	n := a.N
	if len(x) != n {
		panic(fmt.Sprintf("sttsv: vector length %d, tensor dimension %d", len(x), n))
	}
	if m < 1 {
		panic(fmt.Sprintf("sttsv: Blocked with m=%d", m))
	}
	b := intmath.CeilDiv(n, m)
	padded := m * b
	xp := make([]float64, padded)
	copy(xp, x)
	yp := make([]float64, padded)
	scratch := &tensor.Block{Data: make([]float64, 0, b*b*b)}
	tensor.BlocksOfTetrahedron(m, func(I, J, K int) {
		tensor.ExtractBlockInto(scratch, a, I, J, K, b)
		BlockContribute(scratch,
			xp[I*b:(I+1)*b], xp[J*b:(J+1)*b], xp[K*b:(K+1)*b],
			yp[I*b:(I+1)*b], yp[J*b:(J+1)*b], yp[K*b:(K+1)*b],
			stats)
	})
	return yp[:n]
}
