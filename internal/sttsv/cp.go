package sttsv

import (
	"fmt"

	"repro/internal/tensor"
)

// CPOperator applies a symmetric rank-r CP tensor A = Σ_k λ_k v_k³
// without ever materializing A: y = A ×₂ x ×₃ x = V·diag(λ)·(Vᵀx)²,
// O(nr) work and O(nr) storage versus the C(n+2,3) words of the dense
// packed path. V is stored row-major (n rows of r factor weights) so a
// contiguous row range is exactly the state one parallel rank owns.
//
// Work accounting: each apply is counted as 2nr "ternary-equivalent"
// multiplications — nr for the factor projection z = Vᵀx and nr for the
// rank-r update y = V·(λ∘z²) — the convention used by the session
// engine's logical compute meters.
type CPOperator struct {
	N, R   int
	Lambda []float64
	V      []float64 // row-major: V[i*R+k] is factor k's weight on row i
}

// NewCPOperator builds the operator from factor columns: vectors[k] is
// v_k (length n), weights[k] its λ_k — the same shape tensor.CP takes,
// so the dense expansion of small problems is available for testing.
func NewCPOperator(weights []float64, vectors [][]float64) (*CPOperator, error) {
	if len(weights) == 0 || len(weights) != len(vectors) {
		return nil, fmt.Errorf("sttsv: %d weights for %d factor vectors", len(weights), len(vectors))
	}
	n := len(vectors[0])
	if n == 0 {
		return nil, fmt.Errorf("sttsv: empty factor vectors")
	}
	r := len(weights)
	op := &CPOperator{N: n, R: r, Lambda: append([]float64(nil), weights...), V: make([]float64, n*r)}
	for k, v := range vectors {
		if len(v) != n {
			return nil, fmt.Errorf("sttsv: factor vector %d has length %d, want %d", k, len(v), n)
		}
		for i, w := range v {
			op.V[i*r+k] = w
		}
	}
	return op, nil
}

// Dense expands the operator to packed symmetric storage via tensor.CP —
// only feasible for small n, used by conformance tests.
func (op *CPOperator) Dense() (*tensor.Symmetric, error) {
	vectors := make([][]float64, op.R)
	for k := range vectors {
		v := make([]float64, op.N)
		for i := range v {
			v[i] = op.V[i*op.R+k]
		}
		vectors[k] = v
	}
	return tensor.CP(op.Lambda, vectors)
}

// TernaryEquiv returns the per-apply work in ternary-equivalent
// multiplications: 2nr.
func (op *CPOperator) TernaryEquiv() int64 { return 2 * int64(op.N) * int64(op.R) }

// Project accumulates the factor projection of rows [lo, hi):
// z[k] += Σ_{i in [lo,hi)} V[i,k]·x[i-lo]. x addresses the row range
// locally (len hi-lo); z has length R. This is the per-rank partial the
// parallel CP session all-reduces — r words per rank, independent of n.
func (op *CPOperator) Project(lo, hi int, x, z []float64) {
	r := op.R
	for i := lo; i < hi; i++ {
		xi := x[i-lo]
		row := op.V[i*r : i*r+r]
		for k, w := range row {
			z[k] += w * xi
		}
	}
}

// Update computes the rank-r output for rows [lo, hi) given the full
// projection z = Vᵀx: y[i-lo] += Σ_k V[i,k]·(λ_k·z_k²), using wk as a
// length-R scratch for the weighted squares so the steady state
// allocates nothing. All callers — sequential oracle and every parallel
// rank — share this exact expression, so row i's bits depend only on z.
func (op *CPOperator) Update(lo, hi int, z, wk, y []float64) {
	r := op.R
	for k, zk := range z[:r] {
		wk[k] = op.Lambda[k] * zk * zk
	}
	for i := lo; i < hi; i++ {
		row := op.V[i*r : i*r+r]
		s := 0.0
		for k, w := range row {
			s += w * wk[k]
		}
		y[i-lo] += s
	}
}

// Apply computes y = V·diag(λ)·(Vᵀx)² sequentially. Equivalent to
// ApplyChunked with a single chunk.
func (op *CPOperator) Apply(x []float64, stats *Stats) []float64 {
	return op.ApplyChunked(x, 1, stats)
}

// ApplyChunked is the exact oracle for a P-rank parallel CP apply: the
// rows are split into P contiguous chunks of ⌈n/P⌉ rows, per-chunk
// partial projections are formed independently and then summed in chunk
// order — reproducing bit-for-bit the AllReduceSum combination the
// session engine performs (chunk 0's partial, plus chunk 1's, …) —
// before the shared rank-r update runs per chunk.
func (op *CPOperator) ApplyChunked(x []float64, chunks int, stats *Stats) []float64 {
	if len(x) != op.N {
		panic(fmt.Sprintf("sttsv: CP vector length %d, dimension %d", len(x), op.N))
	}
	if chunks < 1 {
		chunks = 1
	}
	b := (op.N + chunks - 1) / chunks
	span := func(p int) (int, int) {
		lo := p * b
		hi := lo + b
		if lo > op.N {
			lo = op.N
		}
		if hi > op.N {
			hi = op.N
		}
		return lo, hi
	}
	z := make([]float64, op.R)
	partial := make([]float64, op.R)
	for p := 0; p < chunks; p++ {
		lo, hi := span(p)
		for k := range partial {
			partial[k] = 0
		}
		op.Project(lo, hi, x[lo:hi], partial)
		if p == 0 {
			// The collective starts from a copy of rank 0's partial (not
			// from zeros), so -0.0 partials survive; mirror it exactly.
			copy(z, partial)
		} else {
			for k, v := range partial {
				z[k] += v
			}
		}
	}
	y := make([]float64, op.N)
	wk := make([]float64, op.R)
	for p := 0; p < chunks; p++ {
		lo, hi := span(p)
		op.Update(lo, hi, z, wk, y[lo:hi])
	}
	stats.add(op.TernaryEquiv())
	return y
}

// STTSV adapts Apply to the hopm.STTSV function shape.
func (op *CPOperator) STTSV() func(x []float64) []float64 {
	return func(x []float64) []float64 { return op.Apply(x, nil) }
}
