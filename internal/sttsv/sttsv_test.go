package sttsv

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

const tol = 1e-10

func randVec(n int, rng *rand.Rand) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestNaiveAgainstDefinition(t *testing.T) {
	// Tiny case computed by hand: A = x∘x∘x with x = (1,2) gives
	// y_i = x_i (Σ_j x_j²)² ... more directly y = A ×₂ v ×₃ v with v = x:
	// y_i = x_i (x·x)².
	x := []float64{1, 2}
	a := tensor.RankOne(1, x).Dense()
	y := Naive(a, x, nil)
	norm2 := 1.0*1 + 2.0*2
	for i := range x {
		want := x[i] * norm2 * norm2
		if math.Abs(y[i]-want) > tol {
			t.Fatalf("y[%d] = %g, want %g", i, y[i], want)
		}
	}
}

func TestPackedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{1, 2, 3, 5, 8, 17, 33} {
		a := tensor.Random(n, rng)
		x := randVec(n, rng)
		want := Naive(a.Dense(), x, nil)
		got := Packed(a, x, nil)
		if d := maxAbsDiff(got, want); d > tol {
			t.Fatalf("n=%d: Packed differs from Naive by %g", n, d)
		}
	}
}

func TestSequenceMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 4, 9, 16} {
		a := tensor.Random(n, rng)
		x := randVec(n, rng)
		want := Naive(a.Dense(), x, nil)
		got := Sequence(a, x)
		if d := maxAbsDiff(got, want); d > tol {
			t.Fatalf("n=%d: Sequence differs from Naive by %g", n, d)
		}
	}
}

func TestContractMode3Symmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 7
	a := tensor.Random(n, rng)
	x := randVec(n, rng)
	m := ContractMode3(a, x)
	// M must equal the dense contraction and be symmetric.
	d := a.Dense()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			for k := 0; k < n; k++ {
				want += d.At(i, j, k) * x[k]
			}
			if math.Abs(m[i*n+j]-want) > tol {
				t.Fatalf("M[%d,%d] = %g, want %g", i, j, m[i*n+j], want)
			}
			if math.Abs(m[i*n+j]-m[j*n+i]) > tol {
				t.Fatalf("M not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestTernaryCounts(t *testing.T) {
	// Algorithm 3 does n³; Algorithm 4 does n²(n+1)/2 (§3).
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 2, 5, 10, 20} {
		a := tensor.Random(n, rng)
		x := randVec(n, rng)
		var sn, sp Stats
		Naive(a.Dense(), x, &sn)
		Packed(a, x, &sp)
		if want := int64(n) * int64(n) * int64(n); sn.TernaryMults != want {
			t.Errorf("n=%d: Naive counted %d, want %d", n, sn.TernaryMults, want)
		}
		if want := PackedTernaryCount(n); sp.TernaryMults != want {
			t.Errorf("n=%d: Packed counted %d, want %d", n, sp.TernaryMults, want)
		}
	}
}

func TestPackedIsHalfOfNaive(t *testing.T) {
	// The headline §3 claim: Algorithm 4 performs about half the ternary
	// multiplications of Algorithm 3, converging as n grows.
	for _, n := range []int{10, 50, 200} {
		ratio := float64(PackedTernaryCount(n)) / float64(int64(n)*int64(n)*int64(n))
		if math.Abs(ratio-0.5) > 1.0/float64(n) {
			t.Errorf("n=%d: ratio %g not within 1/n of 0.5", n, ratio)
		}
	}
}

func TestQuadraticScaling(t *testing.T) {
	// y(c·x) = c²·y(x): STTSV is a quadratic form in x for each output.
	rng := rand.New(rand.NewSource(24))
	n := 9
	a := tensor.Random(n, rng)
	x := randVec(n, rng)
	c := 3.7
	cx := make([]float64, n)
	for i := range x {
		cx[i] = c * x[i]
	}
	y1 := Packed(a, x, nil)
	y2 := Packed(a, cx, nil)
	for i := range y1 {
		if math.Abs(y2[i]-c*c*y1[i]) > tol*(1+math.Abs(y1[i])) {
			t.Fatalf("quadratic scaling fails at %d", i)
		}
	}
}

func TestLinearityInTensor(t *testing.T) {
	// STTSV is linear in A: y(A+B) = y(A) + y(B).
	rng := rand.New(rand.NewSource(25))
	n := 8
	a := tensor.Random(n, rng)
	b := tensor.Random(n, rng)
	x := randVec(n, rng)
	sum := a.Clone()
	for i := range sum.Data {
		sum.Data[i] += b.Data[i]
	}
	ya := Packed(a, x, nil)
	yb := Packed(b, x, nil)
	ys := Packed(sum, x, nil)
	for i := range ya {
		if math.Abs(ys[i]-ya[i]-yb[i]) > tol {
			t.Fatalf("linearity fails at %d", i)
		}
	}
}

func TestRankOneEigenpair(t *testing.T) {
	// For A = x∘x∘x with ‖x‖ = 1, A ×₂ x ×₃ x = x (λ = 1): the defining
	// Z-eigenpair identity of §1.
	rng := rand.New(rand.NewSource(26))
	n := 12
	x := randVec(n, rng)
	norm := math.Sqrt(Dot(x, x))
	for i := range x {
		x[i] /= norm
	}
	a := tensor.RankOne(1, x)
	y := Packed(a, x, nil)
	if d := maxAbsDiff(y, x); d > tol {
		t.Fatalf("rank-one eigenpair violated by %g", d)
	}
	if l := Dot(x, y); math.Abs(l-1) > tol {
		t.Fatalf("lambda = %g, want 1", l)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNaivePanicsOnBadVector(t *testing.T) {
	a := tensor.NewDense(3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Naive(a, []float64{1, 2}, nil)
}

func TestPackedPanicsOnBadVector(t *testing.T) {
	a := tensor.NewSymmetric(3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Packed(a, []float64{1, 2}, nil)
}

func BenchmarkNaive(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		rng := rand.New(rand.NewSource(1))
		a := tensor.Random(n, rng).Dense()
		x := randVec(n, rng)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Naive(a, x, nil)
			}
		})
	}
}

func BenchmarkPacked(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		rng := rand.New(rand.NewSource(1))
		a := tensor.Random(n, rng)
		x := randVec(n, rng)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Packed(a, x, nil)
			}
		})
	}
}

func sizeName(n int) string {
	return "n=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
