package sttsv

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// Per-kind kernel benchmarks: scalar reference vs register-tiled production
// kernel at a sweep of block edges. Flop accounting uses the paper's §3 cost
// unit — one ternary multiplication a_ijk·x_j·x_k contributing to an output
// row — reported via ReportMetric as ns/ternary so the regression harness
// (cmd/sttsvbench) can derive GFLOP/s.

type kernelFn func(blk *tensor.Block, xI, xJ, xK, yI, yJ, yK []float64, stats *Stats)

func benchKernel(b *testing.B, I, J, K int, fn kernelFn) {
	for _, edge := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("b=%d", edge), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			blk := tensor.NewBlock(I, J, K, edge)
			for i := range blk.Data {
				blk.Data[i] = rng.NormFloat64()
			}
			x := randVec(edge, rng)
			y := make([]float64, edge)
			ternary := BlockTernaryCount(blk.Kind, edge)
			b.SetBytes(int64(8 * len(blk.Data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fn(blk, x, x, x, y, y, y, nil)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(ternary), "ns/ternary")
		})
	}
}

func BenchmarkBlockContributeOffDiagonal(b *testing.B) {
	b.Run("tiled", func(b *testing.B) { benchKernel(b, 3, 2, 1, BlockContribute) })
	b.Run("scalar", func(b *testing.B) { benchKernel(b, 3, 2, 1, BlockContributeScalar) })
}

func BenchmarkBlockContributeDiagPairHigh(b *testing.B) {
	b.Run("tiled", func(b *testing.B) { benchKernel(b, 2, 2, 1, BlockContribute) })
	b.Run("scalar", func(b *testing.B) { benchKernel(b, 2, 2, 1, BlockContributeScalar) })
}

func BenchmarkBlockContributeDiagPairLow(b *testing.B) {
	b.Run("tiled", func(b *testing.B) { benchKernel(b, 2, 1, 1, BlockContribute) })
	b.Run("scalar", func(b *testing.B) { benchKernel(b, 2, 1, 1, BlockContributeScalar) })
}

func BenchmarkBlockContributeCentral(b *testing.B) {
	b.Run("tiled", func(b *testing.B) { benchKernel(b, 1, 1, 1, BlockContribute) })
	b.Run("scalar", func(b *testing.B) { benchKernel(b, 1, 1, 1, BlockContributeScalar) })
}

// BenchmarkLocalPhase measures one rank-local STTSV application — the
// compute phase the paper's communication lower bound trades against —
// through the packed-operator path, across worker counts: the paper's
// (q=3 ⇒ m=10) grid at a small edge, a cache-resident b=32 shape
// (m=4 ⇒ ~2.9 MB packed, where the kernel speedup is visible), and the
// large streamed m=10, b=32 shape (~44 MB packed, DRAM-bandwidth-bound).
func BenchmarkLocalPhase(b *testing.B) {
	for _, shape := range []struct{ m, edge int }{{10, 8}, {4, 32}, {10, 32}} {
		n := shape.m * shape.edge
		rng := rand.New(rand.NewSource(9))
		a := tensor.Random(n, rng)
		x := randVec(n, rng)
		ternary := PackedTernaryCount(n)
		b.Run(fmt.Sprintf("m=%d/b=%d/scalar", shape.m, shape.edge), func(b *testing.B) {
			op := NewOperator(a, shape.m, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scalarApply(op, x)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(ternary), "ns/ternary")
		})
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("m=%d/b=%d/workers=%d", shape.m, shape.edge, workers), func(b *testing.B) {
				op := NewOperator(a, shape.m, workers)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					op.Apply(x, nil)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(ternary), "ns/ternary")
			})
		}
	}
}

// scalarApply runs the packed blocks through the seed scalar kernel
// sequentially — the baseline the tiled/parallel speedups are quoted
// against.
func scalarApply(op *Operator, x []float64) []float64 {
	n, m, b := op.N(), op.M(), op.B()
	xp := make([]float64, m*b)
	copy(xp, x[:n])
	yp := make([]float64, m*b)
	for _, blk := range op.Packed().Blocks {
		I, J, K := blk.I, blk.J, blk.K
		BlockContributeScalar(blk,
			xp[I*b:(I+1)*b], xp[J*b:(J+1)*b], xp[K*b:(K+1)*b],
			yp[I*b:(I+1)*b], yp[J*b:(J+1)*b], yp[K*b:(K+1)*b], nil)
	}
	return yp[:n]
}
