package sttsv

import (
	"runtime"
	"sync"

	"repro/internal/tensor"
)

// Executor distributes block contributions over a fixed-size worker pool
// with bit-reproducible output. Blocks are dealt round-robin to workers in
// input order; each worker accumulates into private per-row buffers; the
// buffers are then merged by a fixed pairwise tree reduction and added to
// the caller's output rows. For a given block list and worker count the
// result bits therefore never depend on goroutine scheduling — only the
// worker count itself changes the summation grouping (documented alongside
// the tiled-kernel reassociation; equivalence to the sequential path holds
// to a few ulps).
//
// An Executor is stateless and safe for concurrent use by multiple
// callers (e.g. all ranks of the simulated machine sharing one).
type Executor struct {
	workers int
	scalar  bool
}

// NewExecutor returns an executor with the given worker count;
// workers <= 0 selects GOMAXPROCS.
func NewExecutor(workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Executor{workers: workers}
}

// NewScalarExecutor returns an executor that applies blocks with the
// scalar reference kernel (BlockContributeScalar) instead of the tiled
// kernels. With one worker its output is bit-for-bit the seed sequential
// behavior — the exact oracle the sparse block kernels are conformance-
// tested against (they reproduce the scalar association order over the
// stored nonzeros).
func NewScalarExecutor(workers int) *Executor {
	e := NewExecutor(workers)
	e.scalar = true
	return e
}

// Workers returns the configured worker count.
func (e *Executor) Workers() int { return e.workers }

// Scalar reports whether this executor uses the scalar reference kernel.
func (e *Executor) Scalar() bool { return e.scalar }

// contribute applies one block with the executor's configured kernel.
func (e *Executor) contribute(blk *tensor.Block, xI, xJ, xK, yI, yJ, yK []float64, stats *Stats) {
	if e.scalar {
		BlockContributeScalar(blk, xI, xJ, xK, yI, yJ, yK, stats)
		return
	}
	BlockContribute(blk, xI, xJ, xK, yI, yJ, yK, stats)
}

// Contribute applies every block to the input row blocks and accumulates
// into the output row blocks: xRow(i) and yRow(i) return the length-b row
// block of row-block index i. xRow must be safe for concurrent calls (it
// is invoked from worker goroutines); yRow is only called after all
// workers have finished. With one worker (or one block) the blocks are
// applied directly in input order — identical to the plain sequential
// loop.
func (e *Executor) Contribute(blocks []*tensor.Block, b int, xRow, yRow func(int) []float64, stats *Stats) {
	e.ContributeWith(nil, blocks, b, xRow, yRow, stats)
}

// ContributeWith is Contribute drawing its per-worker accumulators from sc
// so repeated applications over the same blocks allocate nothing after the
// first. A nil sc allocates fresh accumulators per call (Contribute's
// behaviour). The output bits are identical either way: row tables start
// all-nil and rows are zeroed on first touch, so the deterministic tree
// reduction sees exactly the state it would with fresh buffers.
func (e *Executor) ContributeWith(sc *Scratch, blocks []*tensor.Block, b int, xRow, yRow func(int) []float64, stats *Stats) {
	if len(blocks) == 0 {
		return
	}
	w := e.workers
	if w > len(blocks) {
		w = len(blocks)
	}
	if w <= 1 {
		for _, blk := range blocks {
			e.contribute(blk,
				xRow(blk.I), xRow(blk.J), xRow(blk.K),
				yRow(blk.I), yRow(blk.J), yRow(blk.K), stats)
		}
		return
	}

	maxRow := 0
	for _, blk := range blocks {
		if blk.I > maxRow { // I >= J >= K
			maxRow = blk.I
		}
	}
	var workers []workerScratch
	if sc != nil {
		workers = sc.acquire(w, maxRow)
	} else {
		workers = make([]workerScratch, w)
		for wi := range workers {
			workers[wi].rows = make([][]float64, maxRow+1)
		}
	}
	acc := make([][][]float64, w) // acc[worker][row block] — private accumulators
	counts := make([]int64, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			ws := &workers[wi]
			row := func(i int) []float64 { return ws.row(i, b) }
			var st Stats
			for bi := wi; bi < len(blocks); bi += w {
				blk := blocks[bi]
				e.contribute(blk,
					xRow(blk.I), xRow(blk.J), xRow(blk.K),
					row(blk.I), row(blk.J), row(blk.K), &st)
			}
			acc[wi] = ws.rows
			counts[wi] = st.TernaryMults
		}(wi)
	}
	wg.Wait()

	// Deterministic pairwise tree reduction into acc[0]: worker w absorbs
	// w+stride for stride 1, 2, 4, … — the grouping depends only on w.
	for stride := 1; stride < w; stride *= 2 {
		for lo := 0; lo+stride < w; lo += 2 * stride {
			dst, src := acc[lo], acc[lo+stride]
			for i := range src {
				if src[i] == nil {
					continue
				}
				if dst[i] == nil {
					dst[i] = src[i]
					continue
				}
				d, s := dst[i], src[i]
				for t := range d {
					d[t] += s[t]
				}
			}
		}
	}
	for i, buf := range acc[0] {
		if buf == nil {
			continue
		}
		dst := yRow(i)
		for t := range buf {
			dst[t] += buf[t]
		}
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	stats.add(total)
}

// ContributeCols applies the block list to cols independent right-hand
// sides: xRow(i, l) and yRow(i, l) address the length-b row block of row i
// for column l. Columns are processed one at a time through ContributeWith,
// so column l's output bits are identical to a single-column Contribute
// over that column — batching changes the communication schedule (see
// parallel.Session.ApplyBatch), never the arithmetic.
func (e *Executor) ContributeCols(sc *Scratch, blocks []*tensor.Block, b, cols int, xRow, yRow func(i, l int) []float64, stats *Stats) {
	for l := 0; l < cols; l++ {
		l := l
		e.ContributeWith(sc, blocks, b,
			func(i int) []float64 { return xRow(i, l) },
			func(i int) []float64 { return yRow(i, l) }, stats)
	}
}
