package sttsv

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// kernelCases pairs each block kind with representative coordinates; the
// coordinate pattern also determines the legitimate slice aliasing (equal
// coordinates share one row block).
var kernelCases = []struct {
	name    string
	I, J, K int
}{
	{"off-diagonal", 3, 2, 1},
	{"diag-pair-high", 2, 2, 1},
	{"diag-pair-low", 2, 1, 1},
	{"central", 1, 1, 1},
}

// kernelEdges is the satellite-mandated edge sweep: all small sizes (every
// remainder path of the 4-wide tiling), one tile-exact size and one large
// odd size.
var kernelEdges = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 16, 33}

// randBlock returns a block with random data at the given coordinates.
func randBlock(I, J, K, b int, rng *rand.Rand) *tensor.Block {
	blk := tensor.NewBlock(I, J, K, b)
	for i := range blk.Data {
		blk.Data[i] = rng.NormFloat64()
	}
	return blk
}

// rowsFor returns one slice per distinct block coordinate, so coinciding
// coordinates alias exactly as the kernel contract specifies.
func rowsFor(I, J, K, b int, fill func() float64) (rI, rJ, rK []float64) {
	byCoord := map[int][]float64{}
	get := func(c int) []float64 {
		if byCoord[c] == nil {
			s := make([]float64, b)
			for i := range s {
				s[i] = fill()
			}
			byCoord[c] = s
		}
		return byCoord[c]
	}
	return get(I), get(J), get(K)
}

// TestTiledMatchesScalarProperty is the kernel-equivalence property test:
// for every block kind and every edge in kernelEdges, the register-tiled
// kernel must agree with the pure-scalar reference — including aliased
// yI/yJ/yK slices and nonzero initial accumulators — up to summation-order
// reassociation. The tiled kernels regroup sums (multi-accumulator dots,
// 4-wide fused yK updates), so exact bit equality with the scalar
// reference is NOT guaranteed; the documented contract is agreement within
// a small multiple of machine epsilon, asserted here as
// |Δ| ≤ 1e-12·(1+|reference|) per element.
func TestTiledMatchesScalarProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, b := range kernelEdges {
		for _, c := range kernelCases {
			blk := randBlock(c.I, c.J, c.K, b, rng)
			xI, xJ, xK := rowsFor(c.I, c.J, c.K, b, rng.NormFloat64)
			// Nonzero initial accumulators: the kernels must accumulate,
			// not overwrite. The copies preserve the aliasing structure
			// (equal coordinates keep sharing one slice).
			sI, sJ, sK := rowsFor(c.I, c.J, c.K, b, rng.NormFloat64)
			clones := map[*float64][]float64{}
			clone := func(s []float64) []float64 {
				if c, ok := clones[&s[0]]; ok {
					return c
				}
				c := append([]float64(nil), s...)
				clones[&s[0]] = c
				return c
			}
			tI, tJ, tK := clone(sI), clone(sJ), clone(sK)

			var stScalar, stTiled Stats
			BlockContributeScalar(blk, xI, xJ, xK, sI, sJ, sK, &stScalar)
			BlockContribute(blk, xI, xJ, xK, tI, tJ, tK, &stTiled)

			if stScalar.TernaryMults != stTiled.TernaryMults {
				t.Fatalf("%s b=%d: stats %d vs %d", c.name, b, stScalar.TernaryMults, stTiled.TernaryMults)
			}
			for name, pair := range map[string][2][]float64{
				"yI": {sI, tI}, "yJ": {sJ, tJ}, "yK": {sK, tK},
			} {
				for i := range pair[0] {
					want, got := pair[0][i], pair[1][i]
					if d := math.Abs(got - want); d > 1e-12*(1+math.Abs(want)) {
						t.Fatalf("%s b=%d %s[%d]: tiled %g vs scalar %g (Δ=%g)",
							c.name, b, name, i, got, want, d)
					}
				}
			}
		}
	}
}

// TestTiledMatchesPackedProperty checks the tiled kernels against the
// independent Algorithm 4 oracle: a tensor zero outside one block, full
// Packed evaluation versus the single block contribution.
func TestTiledMatchesPackedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, b := range kernelEdges {
		n := 4 * b
		for _, c := range kernelCases {
			a := tensor.NewSymmetric(n)
			probe := tensor.NewBlock(c.I, c.J, c.K, b)
			probe.ForEach(func(di, dj, dk int, _ float64) {
				gi, gj, gk := probe.GlobalIndices(di, dj, dk)
				a.Set(gi, gj, gk, rng.NormFloat64())
			})
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			want := Packed(a, x, nil)

			blk := tensor.ExtractBlock(a, c.I, c.J, c.K, b)
			y := make([]float64, n)
			BlockContribute(blk,
				x[c.I*b:(c.I+1)*b], x[c.J*b:(c.J+1)*b], x[c.K*b:(c.K+1)*b],
				y[c.I*b:(c.I+1)*b], y[c.J*b:(c.J+1)*b], y[c.K*b:(c.K+1)*b], nil)
			for i := range y {
				if d := math.Abs(y[i] - want[i]); d > 1e-11*(1+math.Abs(want[i])) {
					t.Fatalf("%s b=%d: y[%d]=%g want %g (Δ=%g)", c.name, b, i, y[i], want[i], d)
				}
			}
		}
	}
}

// countTernary is the instrumented twin of the scalar reference kernel:
// the same loop structure, incrementing a counter once per ternary
// multiplication actually contributed to an output row (the paper's §3
// cost unit). It deliberately re-walks the kernel's control flow rather
// than using the closed-form BlockTernaryCount formulas it is the golden
// oracle for.
func countTernary(blk *tensor.Block) int64 {
	b := blk.B
	var cnt int64
	switch blk.Kind {
	case tensor.OffDiagonal:
		for di := 0; di < b; di++ {
			for dj := 0; dj < b; dj++ {
				for dk := 0; dk < b; dk++ {
					cnt++ // yK[dk] += 2·xi·xj·v
				}
				cnt += int64(b) // acc += s·xj: b elements reach yI[di]
				cnt += int64(b) // yJ[dj] += 2·xi·s: b elements reach yJ[dj]
			}
		}
	case tensor.DiagPairHigh:
		for di := 0; di < b; di++ {
			for dj := 0; dj < di; dj++ {
				for dk := 0; dk < b; dk++ {
					cnt++ // yK
				}
				cnt += int64(b) // yI[di] += 2·s·xj
				cnt += int64(b) // yJ[dj] += 2·s·xi
			}
			// di == dj row: i == j > k elements contribute to yK and yI only.
			for dk := 0; dk < b; dk++ {
				cnt++ // yK[dk] += xi²·v
			}
			cnt += int64(b) // yI[di] += 2·s·xi
		}
	case tensor.DiagPairLow:
		for di := 0; di < b; di++ {
			for dj := 0; dj < b; dj++ {
				for dk := 0; dk < dj; dk++ {
					cnt++ // yK
				}
				cnt += int64(dj) + 1 // yI[di] += 2·s·xj + v·xj²
				cnt += int64(dj) + 1 // yJ[dj] += 2·s·xi + 2·v·xi·xj
			}
		}
	case tensor.Central:
		for di := 0; di < b; di++ {
			for dj := 0; dj < di; dj++ {
				for dk := 0; dk < dj; dk++ {
					cnt++ // yK
				}
				cnt += int64(dj) + 1 // yI[di] += 2·s·xj + v·xj²
				cnt += int64(dj) + 1 // yJ[dj] += 2·s·xi + 2·v·xi·xj
			}
			for dk := 0; dk < di; dk++ {
				cnt++ // yK[dk] += xi²·v
			}
			cnt += int64(di) + 1 // yI[di] += 2·s·xi + v·xi²
		}
	}
	return cnt
}

// TestGoldenTernaryCount asserts BlockTernaryCount equals the
// multiplication count the instrumented scalar reference executes, for
// every kind across the edge sweep.
func TestGoldenTernaryCount(t *testing.T) {
	for _, b := range kernelEdges {
		for _, c := range kernelCases {
			blk := tensor.NewBlock(c.I, c.J, c.K, b)
			if got, want := countTernary(blk), BlockTernaryCount(blk.Kind, b); got != want {
				t.Errorf("%s b=%d: instrumented kernel executed %d ternary mults, BlockTernaryCount says %d",
					c.name, b, got, want)
			}
		}
	}
}

// TestScalarKernelStatsAndZeroBlock pins basic invariants of the scalar
// reference (it is the seed kernel, kept as the bit-for-bit baseline the
// tiled kernels are measured against): exact stats accounting and zero
// contribution from zero blocks under full aliasing.
func TestScalarKernelStatsAndZeroBlock(t *testing.T) {
	for _, c := range kernelCases {
		blk := tensor.NewBlock(c.I, c.J, c.K, 5)
		x := make([]float64, 5)
		for i := range x {
			x[i] = float64(i + 1)
		}
		y := make([]float64, 5)
		var st Stats
		BlockContributeScalar(blk, x, x, x, y, y, y, &st)
		if st.TernaryMults != BlockTernaryCount(blk.Kind, 5) {
			t.Errorf("%s: stats %d", c.name, st.TernaryMults)
		}
		for i, v := range y {
			if v != 0 {
				t.Errorf("%s: zero block contributed y[%d]=%g", c.name, i, v)
			}
		}
	}
}
