package sttsv

// Scratch holds the per-worker accumulator state of Executor.Contribute so
// a caller that applies the same block list repeatedly (a resident
// parallel.Session rank) performs no allocations after the first
// application. A Scratch grows to the high-water mark of whatever calls it
// serves and is then reused verbatim.
//
// Reproducibility: Contribute's bit-exactness contract relies on rows that
// no block touches staying nil in each worker's accumulator table (the
// tree reduction moves or skips nil rows). Scratch preserves that exactly:
// the row-pointer tables are reset to nil on every acquisition and row
// buffers are zeroed when first touched, so a warm Scratch produces the
// same bits as freshly allocated accumulators.
//
// A Scratch is NOT safe for concurrent use — each concurrent caller (each
// simulated rank) owns its own.
type Scratch struct {
	perWorker []workerScratch
}

type workerScratch struct {
	rows  [][]float64 // row-block index → accumulator row, nil until touched
	arena []float64   // backing storage carved into b-word rows
	used  int         // words of arena handed out this application
}

// NewScratch returns an empty Scratch; buffers are grown on first use.
func NewScratch() *Scratch { return &Scratch{} }

// acquire readies w worker tables covering row blocks 0..maxRow, reusing
// prior capacity. Returned tables have every row pointer nil.
func (sc *Scratch) acquire(w, maxRow int) []workerScratch {
	if cap(sc.perWorker) < w {
		grown := make([]workerScratch, w)
		copy(grown, sc.perWorker)
		sc.perWorker = grown
	}
	sc.perWorker = sc.perWorker[:w]
	for wi := range sc.perWorker {
		ws := &sc.perWorker[wi]
		if cap(ws.rows) < maxRow+1 {
			ws.rows = make([][]float64, maxRow+1)
		}
		ws.rows = ws.rows[:maxRow+1]
		for i := range ws.rows {
			ws.rows[i] = nil
		}
		ws.used = 0
	}
	return sc.perWorker
}

// row returns the worker's accumulator for row block i, carving a zeroed
// b-word row out of the arena on first touch.
func (ws *workerScratch) row(i, b int) []float64 {
	if ws.rows[i] == nil {
		if ws.used+b > len(ws.arena) {
			grown := make([]float64, ws.used+b, 2*(ws.used+b))
			copy(grown, ws.arena[:ws.used])
			ws.arena = grown
		}
		buf := ws.arena[ws.used : ws.used+b : ws.used+b]
		ws.used += b
		clear(buf)
		ws.rows[i] = buf
	}
	return ws.rows[i]
}
