package dsym

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/intmath"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

const tol = 1e-10

func randVec(n int, rng *rand.Rand) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestSize(t *testing.T) {
	cases := []struct{ n, d, want int }{
		{5, 1, 5}, {5, 2, 15}, {5, 3, 35}, {5, 4, 70},
		{10, 3, 220}, {1, 5, 1}, {0, 3, 0},
	}
	for _, c := range cases {
		if got := Size(c.n, c.d); got != c.want {
			t.Errorf("Size(%d,%d) = %d, want %d", c.n, c.d, got, c.want)
		}
	}
}

func TestIndexBijective(t *testing.T) {
	// ForEach must visit offsets 0..Size-1 in order, with Index agreeing.
	for _, c := range []struct{ n, d int }{{6, 2}, {5, 3}, {4, 4}, {3, 5}, {7, 1}} {
		ten := New(c.n, c.d)
		next := 0
		ten.ForEach(func(idx []int, _ float64) {
			if got := Index(idx); got != next {
				t.Fatalf("n=%d d=%d: Index(%v) = %d, want %d", c.n, c.d, idx, got, next)
			}
			next++
		})
		if next != Size(c.n, c.d) {
			t.Fatalf("n=%d d=%d: visited %d of %d", c.n, c.d, next, Size(c.n, c.d))
		}
	}
}

func TestIndexMatchesOrder3Layout(t *testing.T) {
	// The d=3 layout coincides with package tensor's PackedIndex.
	for i := 0; i < 8; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k <= j; k++ {
				if Index([]int{i, j, k}) != tensor.PackedIndex(i, j, k) {
					t.Fatalf("layout mismatch at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestAtSetPermutationInvariant(t *testing.T) {
	ten := New(5, 4)
	ten.Set(3.5, 1, 4, 2, 4)
	for _, perm := range [][]int{{4, 4, 2, 1}, {2, 4, 1, 4}, {4, 1, 4, 2}} {
		if ten.At(perm...) != 3.5 {
			t.Fatalf("At(%v) = %g", perm, ten.At(perm...))
		}
	}
}

func TestApplyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct{ n, d int }{{5, 2}, {6, 3}, {5, 4}, {4, 5}, {3, 6}, {7, 1}} {
		ten := Random(c.n, c.d, rng)
		x := randVec(c.n, rng)
		want := Naive(ten, x)
		got := Apply(ten, x, nil)
		for i := range want {
			if math.Abs(got[i]-want[i]) > tol*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d d=%d: Apply[%d] = %g, Naive %g", c.n, c.d, i, got[i], want[i])
			}
		}
	}
}

func TestApplyOrder3MatchesPackedSTTSV(t *testing.T) {
	// The d=3 instance must agree with the production Algorithm 4.
	rng := rand.New(rand.NewSource(2))
	n := 9
	a3 := tensor.Random(n, rng)
	ten := New(n, 3)
	copy(ten.Data, a3.Data) // identical layouts (verified above)
	x := randVec(n, rng)
	want := sttsv.Packed(a3, x, nil)
	got := Apply(ten, x, nil)
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("order-3 disagreement at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestApplyOrder2IsSymmetricMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 6
	ten := Random(n, 2, rng)
	x := randVec(n, rng)
	got := Apply(ten, x, nil)
	for i := 0; i < n; i++ {
		want := 0.0
		for j := 0; j < n; j++ {
			want += ten.At(i, j) * x[j]
		}
		if math.Abs(got[i]-want) > tol {
			t.Fatalf("matvec row %d: %g vs %g", i, got[i], want)
		}
	}
}

func TestRankOneIdentity(t *testing.T) {
	// A = x^{∘d} with ‖x‖=1: A·x^{d−1} = x for every d.
	rng := rand.New(rand.NewSource(4))
	for _, d := range []int{2, 3, 4, 5} {
		n := 7
		x := randVec(n, rng)
		normalize(x)
		ten := RankOne(1, x, d)
		y := Apply(ten, x, nil)
		for i := range y {
			if math.Abs(y[i]-x[i]) > 1e-9 {
				t.Fatalf("d=%d: rank-one identity violated at %d", d, i)
			}
		}
	}
}

func TestOperationCounts(t *testing.T) {
	// The symmetric algorithm performs ≈ d/d!·n^d merged operations: for
	// each stored entry, one per distinct index. Exact: Σ over multisets
	// of (#distinct indices). Verify the d=3 total against the paper's
	// merged count: each (entry, distinct index) pair is one merged op;
	// summing multiplicities instead gives n^d.
	rng := rand.New(rand.NewSource(5))
	for _, c := range []struct{ n, d int }{{6, 3}, {5, 4}} {
		ten := Random(c.n, c.d, rng)
		x := randVec(c.n, rng)
		var st Stats
		Apply(ten, x, &st)
		// Independent recount.
		var want int64
		ten.ForEach(func(idx []int, _ float64) {
			distinct := 1
			for i := 1; i < len(idx); i++ {
				if idx[i] != idx[i-1] {
					distinct++
				}
			}
			want += int64(distinct)
		})
		if st.DaryMults != want {
			t.Fatalf("n=%d d=%d: counted %d, want %d", c.n, c.d, st.DaryMults, want)
		}
		// And the naive count dwarfs it by ≈ (d−1)!.
		if naive := NaiveCount(c.n, c.d); st.DaryMults >= naive {
			t.Fatalf("symmetric count %d not below naive %d", st.DaryMults, naive)
		}
	}
}

func TestLowerBoundGeneralizesD3(t *testing.T) {
	// d=3 must reproduce the costmodel formula 2(n(n−1)(n−2)/P)^{1/3}−2n/P.
	n, p := 120, 30
	want := 2*math.Cbrt(float64(n*(n-1)*(n-2))/float64(p)) - 2*float64(n)/float64(p)
	if got := LowerBoundWords(n, 3, p); math.Abs(got-want) > 1e-9 {
		t.Fatalf("d=3 bound %g, want %g", got, want)
	}
	// Higher d lowers the per-processor requirement exponent: bound
	// ≈ 2n/P^{1/d} grows toward 2n as d increases (less parallel slack).
	if LowerBoundWords(n, 4, p) <= LowerBoundWords(n, 3, p) {
		t.Fatal("d=4 bound should exceed d=3 bound for fixed P")
	}
}

func TestPowerMethodRankOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, d := range []int{3, 4} {
		n := 8
		v := randVec(n, rng)
		normalize(v)
		ten := RankOne(2, v, d)
		lambda, x, _, converged := PowerMethod(ten, 7, 0, 2000, 1e-12)
		if !converged {
			t.Fatalf("d=%d: did not converge", d)
		}
		if math.Abs(lambda-2) > 1e-6 {
			t.Fatalf("d=%d: lambda = %g, want 2", d, lambda)
		}
		if a := math.Abs(dot(x, v)); math.Abs(a-1) > 1e-6 {
			t.Fatalf("d=%d: alignment %g", d, a)
		}
	}
}

func TestStorageSavings(t *testing.T) {
	// The §1 motivation: a symmetric d-tensor stores ≈ n^d/d! values.
	for _, c := range []struct{ n, d int }{{20, 3}, {12, 4}, {10, 5}} {
		packed := float64(Size(c.n, c.d))
		full := math.Pow(float64(c.n), float64(c.d))
		dFact := 1.0
		for i := 2; i <= c.d; i++ {
			dFact *= float64(i)
		}
		ratio := packed / (full / dFact)
		if ratio < 1 || ratio > 2.5 {
			t.Errorf("n=%d d=%d: packed/(n^d/d!) = %g", c.n, c.d, ratio)
		}
	}
}

func TestValidationPanics(t *testing.T) {
	ten := New(4, 3)
	for name, fn := range map[string]func(){
		"arity":       func() { ten.At(1, 2) },
		"range":       func() { ten.At(1, 2, 9) },
		"unsorted":    func() { Index([]int{1, 2, 0}) },
		"negative":    func() { Index([]int{2, 1, -1}) },
		"apply len":   func() { Apply(ten, make([]float64, 3), nil) },
		"naive len":   func() { Naive(ten, make([]float64, 3)) },
		"bad new":     func() { New(3, 0) },
		"negative n":  func() { New(-1, 3) },
		"intmath dep": func() { _ = intmath.Binomial(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkApplyD4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ten := Random(24, 4, rng)
	x := randVec(24, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Apply(ten, x, nil)
	}
}
