// Package dsym generalizes the STTSV machinery to d-dimensional symmetric
// tensors — the first item on the paper's future-work list (§8: "We intend
// to generalize our results for d-dimensional computations. The lower
// bound arguments can easily be extended…").
//
// A fully symmetric order-d tensor of dimension n has one stored value per
// multiset of d indices: C(n+d−1, d) values, ≈ n^d/d! — the savings the
// paper's introduction highlights. The package provides
//
//   - packed storage indexed by the combinatorial number system (the d=3
//     case coincides bit-for-bit with package tensor's layout);
//   - the d-dimensional STTSV y = A ×₂x ×₃x ⋯ ×_d x, both a dense naive
//     oracle (n^d d-ary multiplications) and the symmetry-exploiting
//     algorithm that visits each stored value once (≈ d·n^d/d! merged
//     operations — the Algorithm 4 generalization);
//   - the generalized Theorem 5.2 lower bound 2·(d!·C(n,d)/P)^{1/d} − 2n/P
//     (package costmodel holds the d=3 special case);
//   - a d-dimensional higher-order power method.
//
// What does NOT generalize (as the paper notes) is the partition: no
// infinite families of Steiner (n, r, s) systems are known for s > 3, so
// the communication-optimal data distribution stays 3-dimensional.
package dsym

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/intmath"
)

// Tensor is a fully symmetric order-D tensor of dimension N in packed
// multiset storage: Data[Index(idx)] holds the value of every permutation
// of idx.
type Tensor struct {
	N, D int
	Data []float64
}

// Size returns the number of stored values: C(n+d−1, d).
func Size(n, d int) int { return intmath.Binomial(n+d-1, d) }

// New returns a zero symmetric tensor of dimension n and order d >= 1.
func New(n, d int) *Tensor {
	if n < 0 || d < 1 {
		panic(fmt.Sprintf("dsym: New(%d, %d)", n, d))
	}
	return &Tensor{N: n, D: d, Data: make([]float64, Size(n, d))}
}

// Index maps a non-increasing multi-index i₁ >= i₂ >= … >= i_d >= 0 to its
// packed offset via the combinatorial number system:
// Σ_t C(i_t + d − t, d − t + 1). For d=3 this is tensor.PackedIndex.
func Index(idx []int) int {
	d := len(idx)
	off := 0
	for t := 0; t < d; t++ {
		if t > 0 && idx[t] > idx[t-1] {
			panic(fmt.Sprintf("dsym: Index(%v) not non-increasing", idx))
		}
		if idx[t] < 0 {
			panic(fmt.Sprintf("dsym: Index(%v) negative", idx))
		}
		k := d - t
		off += intmath.Binomial(idx[t]+k-1, k)
	}
	return off
}

// sortDesc returns a descending-sorted copy (insertion sort — d is tiny).
func sortDesc(idx []int) []int {
	cp := append([]int(nil), idx...)
	for i := 1; i < len(cp); i++ {
		v := cp[i]
		j := i - 1
		for j >= 0 && cp[j] < v {
			cp[j+1] = cp[j]
			j--
		}
		cp[j+1] = v
	}
	return cp
}

// At returns the entry for any ordering of the indices.
func (t *Tensor) At(idx ...int) float64 {
	t.checkArity(idx)
	return t.Data[Index(sortDesc(idx))]
}

// Set assigns the entry (and by symmetry all permutations).
func (t *Tensor) Set(v float64, idx ...int) {
	t.checkArity(idx)
	t.Data[Index(sortDesc(idx))] = v
}

func (t *Tensor) checkArity(idx []int) {
	if len(idx) != t.D {
		panic(fmt.Sprintf("dsym: %d indices for order-%d tensor", len(idx), t.D))
	}
	for _, i := range idx {
		if i < 0 || i >= t.N {
			panic(fmt.Sprintf("dsym: index %v out of range [0,%d)", idx, t.N))
		}
	}
}

// ForEach visits every stored entry in packed order with its sorted
// (non-increasing) multi-index. The slice is reused across calls.
func (t *Tensor) ForEach(f func(idx []int, v float64)) {
	idx := make([]int, t.D)
	var rec func(pos, maxVal, off int)
	rec = func(pos, maxVal, off int) {
		if pos == t.D {
			f(idx, t.Data[off])
			return
		}
		k := t.D - pos
		for v := 0; v <= maxVal; v++ {
			idx[pos] = v
			rec(pos+1, v, off+intmath.Binomial(v+k-1, k))
		}
	}
	rec(0, t.N-1, 0)
}

// Random fills the stored entries with uniform(-1,1) values.
func Random(n, d int, rng *rand.Rand) *Tensor {
	t := New(n, d)
	for i := range t.Data {
		t.Data[i] = 2*rng.Float64() - 1
	}
	return t
}

// RankOne returns w·x^{∘d}.
func RankOne(w float64, x []float64, d int) *Tensor {
	t := New(len(x), d)
	t.ForEach(func(idx []int, _ float64) {
		v := w
		for _, i := range idx {
			v *= x[i]
		}
		t.Data[Index(idx)] = v
	})
	return t
}

// Stats counts the merged d-ary multiplications of the symmetric
// algorithm (each stored entry contributes one merged operation per
// distinct index it holds).
type Stats struct {
	DaryMults int64
}

// Apply computes y = A ×₂x ×₃x ⋯ ×_d x, elementwise
// y_i = Σ_{j₂…j_d} a_{i j₂…j_d}·x_{j₂}⋯x_{j_d}, visiting each stored
// entry exactly once: for a multiset M and each distinct a ∈ M, the entry
// contributes value·perm(M∖a)·Π_{e∈M∖a} x_e to y_a, where perm counts the
// distinct orderings of the remaining d−1 positions. For d=3 this is
// Algorithm 4.
func Apply(t *Tensor, x []float64, stats *Stats) []float64 {
	if len(x) != t.N {
		panic(fmt.Sprintf("dsym: vector length %d, dimension %d", len(x), t.N))
	}
	y := make([]float64, t.N)
	d := t.D
	factorial := make([]int, d+1)
	factorial[0] = 1
	for i := 1; i <= d; i++ {
		factorial[i] = factorial[i-1] * i
	}
	var count int64
	t.ForEach(func(idx []int, v float64) {
		// Runs of equal indices in the sorted multi-index. (Zero entries
		// are processed too, keeping operation counts data-independent.)
		for s := 0; s < d; {
			e := s
			for e < d && idx[e] == idx[s] {
				e++
			}
			runVal := idx[s]
			// Contribution to y[runVal]: orderings of M minus one copy
			// of runVal, times the product of x over M minus that copy.
			perms := factorial[d-1]
			prod := v
			for s2 := 0; s2 < d; {
				e2 := s2
				for e2 < d && idx[e2] == idx[s2] {
					e2++
				}
				l := e2 - s2
				if idx[s2] == runVal {
					l-- // one copy removed
				}
				perms /= factorial[l]
				for rep := 0; rep < l; rep++ {
					prod *= x[idx[s2]]
				}
				s2 = e2
			}
			y[runVal] += float64(perms) * prod
			count++
			s = e
		}
	})
	if stats != nil {
		stats.DaryMults += count
	}
	return y
}

// NaiveCount returns the d-ary multiplication count of the naive
// algorithm: n^d.
func NaiveCount(n, d int) int64 {
	r := int64(1)
	for i := 0; i < d; i++ {
		r *= int64(n)
	}
	return r
}

// Naive computes the same result by brute force over the full index cube
// (the correctness oracle; exponential in d — keep n, d small).
func Naive(t *Tensor, x []float64) []float64 {
	if len(x) != t.N {
		panic(fmt.Sprintf("dsym: vector length %d, dimension %d", len(x), t.N))
	}
	y := make([]float64, t.N)
	idx := make([]int, t.D)
	var rec func(pos int, prod float64)
	rec = func(pos int, prod float64) {
		if pos == t.D {
			y[idx[0]] += t.At(idx...) * prod
			return
		}
		for v := 0; v < t.N; v++ {
			idx[pos] = v
			if pos == 0 {
				rec(pos+1, 1)
			} else {
				rec(pos+1, prod*x[v])
			}
		}
	}
	rec(0, 1)
	return y
}

// LowerBoundWords returns the d-dimensional generalization of the
// Theorem 5.2 communication lower bound: 2·(d!·C(n,d)/P)^{1/d} − 2n/P.
// (d = 3 recovers 2·(n(n−1)(n−2)/P)^{1/3} − 2n/P.)
func LowerBoundWords(n, d, p int) float64 {
	points := 1.0
	for i := 0; i < d; i++ {
		points *= float64(n - i)
	}
	return 2*math.Pow(points/float64(p), 1/float64(d)) - 2*float64(n)/float64(p)
}

// PowerMethod runs the order-d higher-order power method: y = A·x^{d−1},
// λ = xᵀy, x ← (y + shift·x)/‖·‖. It returns (λ, x, iterations,
// converged).
func PowerMethod(t *Tensor, seed int64, shift float64, maxIter int, tol float64) (float64, []float64, int, bool) {
	if maxIter <= 0 {
		maxIter = 1000
	}
	if tol <= 0 {
		tol = 1e-12
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, t.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	normalize(x)
	lambda, prev := 0.0, math.Inf(1)
	iters := 0
	for it := 1; it <= maxIter; it++ {
		iters = it
		y := Apply(t, x, nil)
		lambda = dot(x, y)
		if math.Abs(lambda-prev) <= tol*(1+math.Abs(lambda)) {
			return lambda, x, iters, true
		}
		prev = lambda
		if shift != 0 {
			for i := range y {
				y[i] += shift * x[i]
			}
		}
		copy(x, y)
		if normalize(x) == 0 {
			return lambda, x, iters, false
		}
	}
	return lambda, x, iters, false
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func normalize(x []float64) float64 {
	n := math.Sqrt(dot(x, x))
	if n == 0 {
		return 0
	}
	for i := range x {
		x[i] /= n
	}
	return n
}
