package cluster

import (
	"fmt"
	"math"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/parallel"
	"repro/internal/partition"
)

// The distributed suite re-execs this test binary as the rank processes:
// TestHelperRankProcess is inert in a normal run and becomes a rank
// process's main when the environment selects it.
func TestHelperRankProcess(t *testing.T) {
	rankEnv := os.Getenv("STTSV_CLUSTER_RANK")
	if rankEnv == "" {
		t.Skip("not a rank process")
	}
	rank, err := strconv.Atoi(rankEnv)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	atoi := func(key string) int {
		v, err := strconv.Atoi(os.Getenv(key))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad %s: %v\n", key, err)
			os.Exit(2)
		}
		return v
	}
	opt := RankOptions{
		Config: Config{
			Network: os.Getenv("STTSV_CLUSTER_NET"),
			Q:       atoi("STTSV_CLUSTER_Q"),
			N:       atoi("STTSV_CLUSTER_N"),
			Seed:    int64(atoi("STTSV_CLUSTER_SEED")),
			MaxIter: atoi("STTSV_CLUSTER_MAXITER"),
			Tol:     1e-10,
			CkptDir: os.Getenv("STTSV_CLUSTER_CKPT"),
			Faults:  os.Getenv("STTSV_CLUSTER_FAULTS"),
		},
		CtlAddr: os.Getenv("STTSV_CLUSTER_CTL"),
		Rank:    rank,
	}
	if err := RunRank(opt); err != nil {
		fmt.Fprintf(os.Stderr, "rank %d: %v\n", rank, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// testSpawner re-execs the test binary as rank processes and remembers
// the live process of each rank so the suite can kill one.
type testSpawner struct {
	t       *testing.T
	cfg     Config
	ctlAddr func() string

	mu    sync.Mutex
	procs map[int]*os.Process
}

func (s *testSpawner) spawn(rank int) (Proc, error) {
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperRankProcess$")
	cmd.Env = append(os.Environ(),
		"STTSV_CLUSTER_RANK="+strconv.Itoa(rank),
		"STTSV_CLUSTER_NET="+s.cfg.Network,
		"STTSV_CLUSTER_Q="+strconv.Itoa(s.cfg.Q),
		"STTSV_CLUSTER_N="+strconv.Itoa(s.cfg.N),
		"STTSV_CLUSTER_SEED="+strconv.FormatInt(s.cfg.Seed, 10),
		"STTSV_CLUSTER_MAXITER="+strconv.Itoa(s.cfg.MaxIter),
		"STTSV_CLUSTER_CKPT="+s.cfg.CkptDir,
		"STTSV_CLUSTER_CTL="+s.ctlAddr(),
		"STTSV_CLUSTER_FAULTS="+s.cfg.Faults,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.procs[rank] = cmd.Process
	s.mu.Unlock()
	return cmdProc{cmd}, nil
}

func (s *testSpawner) kill(rank int) {
	s.mu.Lock()
	proc := s.procs[rank]
	s.mu.Unlock()
	if proc != nil {
		proc.Kill() // SIGKILL: the process gets no chance to clean up
	}
}

type cmdProc struct{ cmd *exec.Cmd }

func (p cmdProc) Kill() error { return p.cmd.Process.Kill() }
func (p cmdProc) Wait() error { return p.cmd.Wait() }

// simReference runs the identical problem on the in-process simulator.
func simReference(t *testing.T, cfg Config) *parallel.EigenResult {
	t.Helper()
	part, a, b, err := cfg.problem()
	if err != nil {
		t.Fatal(err)
	}
	_ = part
	s, err := parallel.OpenSession(a, parallel.Options{
		Part: part, B: b, Wiring: parallel.WiringP2P,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ref, err := s.PowerMethod(parallel.PowerOptions{MaxIter: cfg.MaxIter, Tol: cfg.Tol, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func testConfig(t *testing.T) Config {
	part, err := partition.NewSpherical(2)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Network: "tcp",
		Q:       2,
		N:       part.M * 6,
		Seed:    7,
		MaxIter: 12,
		Tol:     1e-10,
		CkptDir: t.TempDir(),
	}
}

func superviseWith(t *testing.T, cfg Config, hook func(s *testSpawner, rank, iter int)) *Outcome {
	t.Helper()
	var addr string
	var addrMu sync.Mutex
	sp := &testSpawner{
		t:   t,
		cfg: cfg,
		ctlAddr: func() string {
			addrMu.Lock()
			defer addrMu.Unlock()
			return addr
		},
		procs: map[int]*os.Process{},
	}
	out, err := Supervise(SuperviseOptions{
		Config: cfg,
		Spawn:  sp.spawn,
		OnListen: func(a string) {
			addrMu.Lock()
			addr = a
			addrMu.Unlock()
		},
		OnCheckpoint: func(rank, iter int) {
			if hook != nil {
				hook(sp, rank, iter)
			}
		},
		Timeout: 90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertMatchesSim(t *testing.T, out *Outcome, ref *parallel.EigenResult) {
	t.Helper()
	if math.Float64bits(out.Lambda) != math.Float64bits(ref.Lambda) {
		t.Errorf("λ = %v (bits %x), sim %v (bits %x)",
			out.Lambda, math.Float64bits(out.Lambda), ref.Lambda, math.Float64bits(ref.Lambda))
	}
	if out.Iterations != ref.Iterations || out.Converged != ref.Converged || out.Singular != ref.Singular {
		t.Errorf("iters/conv/sing = %d/%v/%v, sim %d/%v/%v",
			out.Iterations, out.Converged, out.Singular, ref.Iterations, ref.Converged, ref.Singular)
	}
	if len(out.X) != len(ref.X) {
		t.Fatalf("X has %d entries, sim %d", len(out.X), len(ref.X))
	}
	for i := range out.X {
		if math.Float64bits(out.X[i]) != math.Float64bits(ref.X[i]) {
			t.Fatalf("X[%d] = %v differs from sim %v", i, out.X[i], ref.X[i])
		}
	}
}

// TestClusterConformance: P separate OS processes over real TCP produce a
// bit-identical power method to the in-process simulator.
func TestClusterConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	cfg := testConfig(t)
	out := superviseWith(t, cfg, nil)
	assertMatchesSim(t, out, simReference(t, cfg))
	if out.Respawns != 0 || out.FinalEpoch != 0 {
		t.Errorf("clean run reported %d respawns, final epoch %d", out.Respawns, out.FinalEpoch)
	}
}

// TestClusterKill9Recovery is the acceptance gate for the recovery arc: a
// rank process is killed with SIGKILL mid-run; the supervisor fences the
// epoch, respawns it, rolls everyone back to the committed checkpoint,
// and the committed results are still bit-identical to the simulator.
func TestClusterKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	cfg := testConfig(t)
	var once sync.Once
	out := superviseWith(t, cfg, func(sp *testSpawner, rank, iter int) {
		// The third committed iteration of rank 1 is strictly mid-method
		// (the q=2 reference runs all 12); take rank 2 down hard.
		if rank == 1 && iter == 3 {
			once.Do(func() { sp.kill(2) })
		}
	})
	if out.Respawns < 1 {
		t.Fatalf("no respawn recorded — the kill never landed")
	}
	if out.FinalEpoch < 1 {
		t.Errorf("final epoch %d after a kill; want ≥ 1", out.FinalEpoch)
	}
	assertMatchesSim(t, out, simReference(t, cfg))
}

// TestClusterChaosKill9Recovery composes the socket fault layer with hard
// process death: every rank's data frames cross a chaos-perturbed TCP
// wire (drops, duplicates, reorders — no deterministic crash; cluster
// runs forbid those, since a respawn would replay straight into the same
// crash), and mid-run one rank process is SIGKILLed on top. The reliable
// transport absorbs the frame damage, the supervisor absorbs the kill,
// and the committed outcome still matches the simulator bit for bit.
func TestClusterChaosKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	cfg := testConfig(t)
	cfg.Faults = "seed=909,drop=0.08,dup=0.08,reorder=0.1"
	var once sync.Once
	out := superviseWith(t, cfg, func(sp *testSpawner, rank, iter int) {
		if rank == 1 && iter == 3 {
			once.Do(func() { sp.kill(2) })
		}
	})
	if out.Respawns < 1 {
		t.Fatalf("no respawn recorded — the kill never landed")
	}
	assertMatchesSim(t, out, simReference(t, cfg))
}

// TestClusterRejectsCrashPlans: a fault plan with a deterministic crash is
// refused up front — a respawned rank process would re-derive the same
// plan and re-crash at the same operation forever.
func TestClusterRejectsCrashPlans(t *testing.T) {
	cfg := testConfig(t)
	cfg.Faults = "drop=0.1,crash=1@5"
	if _, err := Supervise(SuperviseOptions{Config: cfg, Spawn: func(int) (Proc, error) { return nil, nil }}); err == nil {
		t.Fatal("Supervise accepted a crash-scheduling fault plan")
	}
	if err := RunRank(RankOptions{Config: cfg, Rank: 0}); err == nil {
		t.Fatal("RunRank accepted a crash-scheduling fault plan")
	}
}

// TestCheckpointRoundTrip: the durable checkpoint file restores the exact
// state bits and rejects corruption.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := parallel.PowerRankState{
		Lambda: 1.25e-3,
		Prev:   math.Inf(1),
		Chunk:  []float64{0, -1.5, math.Pi, 1e-300, math.Copysign(0, -1)},
	}
	if err := writeCkpt(dir, 4, 17, st); err != nil {
		t.Fatal(err)
	}
	got, err := readCkpt(dir, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Lambda) != math.Float64bits(st.Lambda) ||
		math.Float64bits(got.Prev) != math.Float64bits(st.Prev) {
		t.Errorf("scalars differ: %+v vs %+v", got, st)
	}
	for i := range st.Chunk {
		if math.Float64bits(got.Chunk[i]) != math.Float64bits(st.Chunk[i]) {
			t.Errorf("chunk[%d] differs", i)
		}
	}
	if _, err := readCkpt(dir, 4, 16); err == nil {
		t.Error("missing checkpoint read succeeded")
	}
	if _, err := readCkpt(dir, 3, 17); err == nil {
		t.Error("wrong-rank checkpoint read succeeded")
	}
	raw, err := os.ReadFile(ckptPath(dir, 4, 17))
	if err != nil {
		t.Fatal(err)
	}
	raw[15] ^= 1
	if err := os.WriteFile(ckptPath(dir, 4, 17), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readCkpt(dir, 4, 17); err == nil {
		t.Error("corrupted checkpoint read succeeded")
	}
}
