package cluster

import (
	"testing"
	"time"
)

// goProc satisfies Proc for a rank running as a goroutine — it cannot be
// killed, which is fine for the clean-run conformance path; the kill-9
// suite uses real processes.
type goProc struct{}

func (goProc) Kill() error { return nil }
func (goProc) Wait() error { return nil }

// TestSuperviseInProcess runs the full coordinator/rank protocol with the
// rank processes as goroutines: the whole distributed lifecycle (resume,
// restore, ready, go, checkpoints, result shipping, assembly) without
// exec. Failures here come with this process's stack dump.
func TestSuperviseInProcess(t *testing.T) {
	cfg := testConfig(t)
	var addr string
	addrCh := make(chan string, 1)
	out, err := Supervise(SuperviseOptions{
		Config:   cfg,
		OnListen: func(a string) { addr = a; close(addrCh) },
		Spawn: func(rank int) (Proc, error) {
			<-addrCh
			go func() {
				if err := RunRank(RankOptions{Config: cfg, CtlAddr: addr, Rank: rank}); err != nil {
					t.Errorf("rank %d: %v", rank, err)
				}
			}()
			return goProc{}, nil
		},
		Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesSim(t, out, simReference(t, cfg))
}
