package cluster

import (
	"net"
	"testing"
	"time"

	"repro/internal/partition"
)

// goProc satisfies Proc for a rank running as a goroutine — it cannot be
// killed, which is fine for the clean-run conformance path; the kill-9
// suite uses real processes.
type goProc struct{}

func (goProc) Kill() error { return nil }
func (goProc) Wait() error { return nil }

// TestSuperviseInProcess runs the full coordinator/rank protocol with the
// rank processes as goroutines: the whole distributed lifecycle (resume,
// restore, ready, go, checkpoints, result shipping, assembly) without
// exec. Failures here come with this process's stack dump.
func TestSuperviseInProcess(t *testing.T) {
	cfg := testConfig(t)
	var addr string
	addrCh := make(chan string, 1)
	out, err := Supervise(SuperviseOptions{
		Config:   cfg,
		OnListen: func(a string) { addr = a; close(addrCh) },
		Spawn: func(rank int) (Proc, error) {
			<-addrCh
			go func() {
				if err := RunRank(RankOptions{Config: cfg, CtlAddr: addr, Rank: rank}); err != nil {
					t.Errorf("rank %d: %v", rank, err)
				}
			}()
			return goProc{}, nil
		},
		Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesSim(t, out, simReference(t, cfg))
}

// TestSuperviseInProcessMultiHost is the multi-host-shaped cluster run:
// every rank binds a distinct loopback address from a hosts list, so
// nothing in the portmap path may assume a shared 127.0.0.1 — and the
// committed outcome still matches the simulator bit for bit.
func TestSuperviseInProcessMultiHost(t *testing.T) {
	cfg := testConfig(t)
	part, err := partition.NewSpherical(cfg.Q)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Hosts = make([]string, part.P)
	for r := range cfg.Hosts {
		// 127.0.0.2, 127.0.0.3, ... — one address per rank.
		cfg.Hosts[r] = net.IPv4(127, 0, 0, byte(2+r)).String()
	}
	for _, h := range cfg.Hosts {
		ln, err := net.Listen("tcp", net.JoinHostPort(h, "0"))
		if err != nil {
			t.Skipf("cannot bind %s: %v (single-address loopback)", h, err)
		}
		ln.Close()
	}
	var addr string
	addrCh := make(chan string, 1)
	out, err := Supervise(SuperviseOptions{
		Config:   cfg,
		OnListen: func(a string) { addr = a; close(addrCh) },
		Spawn: func(rank int) (Proc, error) {
			<-addrCh
			go func() {
				if err := RunRank(RankOptions{Config: cfg, CtlAddr: addr, Rank: rank}); err != nil {
					t.Errorf("rank %d: %v", rank, err)
				}
			}()
			return goProc{}, nil
		},
		Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesSim(t, out, simReference(t, cfg))
}
