package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"

	"repro/internal/parallel"
)

// Checkpoint files are the durable half of the recovery contract: a rank
// acknowledges iteration i on the control plane only after the state as
// of i has been renamed into place, so the coordinator's committed
// iteration (the minimum acknowledged over all ranks) always names files
// every rank can actually restore. Format (big-endian):
//
//	u32 magic "STCK" | u32 rank | u32 iter | u64 λ bits | u64 prev bits |
//	u32 nwords | nwords × u64 chunk bits | u64 FNV-1a over all prior bytes

const ckptMagic = 0x5354434b // "STCK"

func ckptPath(dir string, rank, iter int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-r%03d-i%06d.bin", rank, iter))
}

// writeCkpt persists a rank's state atomically: temp file, fsync, rename.
func writeCkpt(dir string, rank, iter int, st parallel.PowerRankState) error {
	buf := make([]byte, 0, 32+8*len(st.Chunk)+8)
	buf = binary.BigEndian.AppendUint32(buf, ckptMagic)
	buf = binary.BigEndian.AppendUint32(buf, uint32(rank))
	buf = binary.BigEndian.AppendUint32(buf, uint32(iter))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(st.Lambda))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(st.Prev))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(st.Chunk)))
	for _, v := range st.Chunk {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	h := fnv.New64a()
	h.Write(buf)
	buf = binary.BigEndian.AppendUint64(buf, h.Sum64())

	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), ckptPath(dir, rank, iter))
}

// readCkpt restores a rank's state from the checkpoint at iter,
// verifying the checksum and the identity fields.
func readCkpt(dir string, rank, iter int) (parallel.PowerRankState, error) {
	var st parallel.PowerRankState
	path := ckptPath(dir, rank, iter)
	buf, err := os.ReadFile(path)
	if err != nil {
		return st, err
	}
	if len(buf) < 32+8 {
		return st, fmt.Errorf("cluster: checkpoint %s truncated (%d bytes)", path, len(buf))
	}
	body, sum := buf[:len(buf)-8], binary.BigEndian.Uint64(buf[len(buf)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return st, fmt.Errorf("cluster: checkpoint %s checksum mismatch", path)
	}
	if binary.BigEndian.Uint32(body[0:]) != ckptMagic {
		return st, fmt.Errorf("cluster: checkpoint %s bad magic", path)
	}
	if r := int(binary.BigEndian.Uint32(body[4:])); r != rank {
		return st, fmt.Errorf("cluster: checkpoint %s is rank %d's, want %d", path, r, rank)
	}
	if i := int(binary.BigEndian.Uint32(body[8:])); i != iter {
		return st, fmt.Errorf("cluster: checkpoint %s is iter %d, want %d", path, i, iter)
	}
	st.Lambda = math.Float64frombits(binary.BigEndian.Uint64(body[12:]))
	st.Prev = math.Float64frombits(binary.BigEndian.Uint64(body[20:]))
	n := int(binary.BigEndian.Uint32(body[28:]))
	if len(body) != 32+8*n {
		return st, fmt.Errorf("cluster: checkpoint %s declares %d words in %d bytes", path, n, len(body))
	}
	st.Chunk = make([]float64, n)
	for i := range st.Chunk {
		st.Chunk[i] = math.Float64frombits(binary.BigEndian.Uint64(body[32+8*i:]))
	}
	return st, nil
}
