package cluster

import (
	"fmt"
	"math"
	"time"

	"repro/internal/netwire"
	"repro/internal/parallel"
)

// Proc is a spawned rank process as the supervisor sees it: enough to
// reap it and to put it down on an error exit.
type Proc interface {
	Kill() error
	Wait() error
}

// Spawner launches the process hosting one rank. It is a hook so the
// kill-9 suite can spawn re-exec'd test helpers and track their pids; the
// CLI spawns os.Executable with -rank=K.
type Spawner func(rank int) (Proc, error)

// SuperviseOptions configures a coordinator run.
type SuperviseOptions struct {
	Config
	// CtlAddr is the control listen address ("127.0.0.1:0" when empty and
	// the network is tcp). The resolved address is what Spawner's processes
	// must dial, available via the OnListen callback.
	CtlAddr string
	// Spawn launches one rank process. Required.
	Spawn Spawner
	// OnListen, when set, receives the resolved control address before any
	// rank is spawned.
	OnListen func(addr string)
	// OnCheckpoint, when set, observes every acknowledged checkpoint — the
	// kill-9 suite's injection point.
	OnCheckpoint func(rank, iter int)
	// MaxRespawns bounds recoveries before the run is declared lost
	// (default 3).
	MaxRespawns int
	// Timeout bounds the whole run (default 2 minutes).
	Timeout time.Duration
}

// Outcome is a completed distributed power method.
type Outcome struct {
	Lambda     float64
	X          []float64
	Iterations int
	Converged  bool
	Singular   bool
	// Respawns counts rank processes restarted after dying mid-run.
	Respawns int
	// FinalEpoch is the wire epoch the run committed in (0 when nothing
	// died).
	FinalEpoch int64
}

// Supervise runs the coordinator side of a distributed power method: it
// spawns the P rank processes, drives the resume/ready/go lifecycle,
// tracks the globally committed checkpoint (the minimum acknowledged
// iteration over all ranks), and — when a rank process dies — aborts the
// epoch, waits for the survivors to quiesce, respawns the dead rank, and
// resumes everyone from the committed iteration in the next epoch. The
// assembled result is bit-identical to the single-process simulated run.
func Supervise(opt SuperviseOptions) (*Outcome, error) {
	cfg := opt.Config.withDefaults()
	part, b, err := cfg.layout()
	if err != nil {
		return nil, err
	}
	if _, err := cfg.faultPlan(); err != nil {
		return nil, err
	}
	if len(cfg.Hosts) > 0 {
		if cfg.Network != "tcp" {
			return nil, fmt.Errorf("cluster: hosts file requires the tcp network")
		}
		if len(cfg.Hosts) != part.P {
			return nil, fmt.Errorf("cluster: hosts file lists %d hosts for %d ranks", len(cfg.Hosts), part.P)
		}
	}
	if opt.Spawn == nil {
		return nil, fmt.Errorf("cluster: no spawner")
	}
	maxRespawns := opt.MaxRespawns
	if maxRespawns <= 0 {
		maxRespawns = 3
	}
	timeout := opt.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	ctlAddr := opt.CtlAddr
	if ctlAddr == "" {
		if cfg.Network != "tcp" {
			return nil, fmt.Errorf("cluster: network %q needs an explicit control address", cfg.Network)
		}
		ctlAddr = "127.0.0.1:0"
	}
	p := part.P

	co, err := netwire.NewCoordinator(cfg.Network, ctlAddr, p)
	if err != nil {
		return nil, err
	}
	defer co.Close()
	if opt.OnListen != nil {
		opt.OnListen(co.Addr())
	}

	procs := make([]Proc, p)
	defer func() {
		for _, pr := range procs {
			if pr != nil {
				pr.Kill()
				go pr.Wait()
			}
		}
	}()
	spawn := func(rank int) error {
		if old := procs[rank]; old != nil {
			go old.Wait() // reap the corpse
			procs[rank] = nil
		}
		pr, err := opt.Spawn(rank)
		if err != nil {
			return fmt.Errorf("cluster: spawn rank %d: %w", rank, err)
		}
		procs[rank] = pr
		return nil
	}
	for r := 0; r < p; r++ {
		if err := spawn(r); err != nil {
			return nil, err
		}
	}

	// Lifecycle state. phase moves idle → readying → running; a death
	// during readying/running detours through aborting.
	const (
		phaseIdle = iota // waiting for all ranks to register
		phaseReadying
		phaseRunning
		phaseAborting
	)
	var (
		phase     = phaseIdle
		epoch     = int64(0)
		respawns  = 0
		refences  = 0 // self-fenced machines recovered without a death
		present   = make([]bool, p)
		nPresent  = 0
		ready     = make([]bool, p)
		nReady    = 0
		pendQuies = map[int]bool{} // survivors owing a quiesced for the aborted epoch
		ckpt      = make([]int, p)
		results   = make([]*netwire.CtlEvent, p)
		nResults  = 0
	)
	committed := func() int {
		min := ckpt[0]
		for _, i := range ckpt[1:] {
			if i < min {
				min = i
			}
		}
		return min
	}
	tryResume := func() error {
		if nPresent == p && len(pendQuies) == 0 && (phase == phaseIdle || phase == phaseAborting) {
			for i := range ready {
				ready[i] = false
			}
			nReady = 0
			for i := range results {
				results[i] = nil
			}
			nResults = 0
			if err := co.Resume(epoch, committed()); err != nil {
				return err
			}
			phase = phaseReadying
		}
		return nil
	}

	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for nResults < p {
		var ev netwire.CtlEvent
		select {
		case ev = <-co.Events():
		case <-deadline.C:
			return nil, fmt.Errorf("cluster: run exceeded %v (phase %d, epoch %d, committed %d)", timeout, phase, epoch, committed())
		}
		switch ev.Type {
		case "hello":
			if !present[ev.Rank] {
				present[ev.Rank] = true
				nPresent++
			}
			if err := tryResume(); err != nil {
				return nil, err
			}
		case "down":
			respawns++
			if respawns > maxRespawns {
				return nil, fmt.Errorf("cluster: rank %d died; respawn budget (%d) exhausted", ev.Rank, maxRespawns)
			}
			if present[ev.Rank] {
				present[ev.Rank] = false
				nPresent--
			}
			delete(pendQuies, ev.Rank)
			if phase == phaseReadying || phase == phaseRunning {
				// Fence the epoch; every present survivor owes a quiesced.
				old := epoch
				epoch++
				for r := 0; r < p; r++ {
					if present[r] {
						pendQuies[r] = true
					}
				}
				co.AbortEpoch(old)
				phase = phaseAborting
			}
			if err := spawn(ev.Rank); err != nil {
				return nil, err
			}
		case "quiesced":
			if phase == phaseReadying || phase == phaseRunning {
				// The rank's machine fenced itself without a coordinator
				// order — its wire saw something fatal. Re-fence the epoch
				// for everyone else and replay from the committed iteration.
				refences++
				if refences > maxRespawns {
					return nil, fmt.Errorf("cluster: rank %d self-fenced; recovery budget (%d) exhausted", ev.Rank, maxRespawns)
				}
				old := epoch
				epoch++
				for r := 0; r < p; r++ {
					if present[r] && r != ev.Rank {
						pendQuies[r] = true
					}
				}
				co.AbortEpoch(old)
				phase = phaseAborting
			}
			delete(pendQuies, ev.Rank)
			if err := tryResume(); err != nil {
				return nil, err
			}
		case "ready":
			if ev.Epoch == epoch && phase == phaseReadying && !ready[ev.Rank] {
				ready[ev.Rank] = true
				nReady++
				if nReady == p {
					co.Go(committed())
					phase = phaseRunning
				}
			}
		case "ckpt":
			if ev.Iter > ckpt[ev.Rank] {
				ckpt[ev.Rank] = ev.Iter
			}
			if opt.OnCheckpoint != nil {
				opt.OnCheckpoint(ev.Rank, ev.Iter)
			}
		case "result":
			if phase != phaseRunning {
				break // stale result from an epoch fenced after completion
			}
			if results[ev.Rank] == nil {
				nResults++
			}
			e := ev
			results[ev.Rank] = &e
		}
	}
	co.Stop()

	// Every rank reported: the scalars must agree exactly, and the owned
	// chunks assemble into the eigenvector.
	first := results[0]
	owned := make([][]float64, p)
	for r, res := range results {
		if res.LambdaBits != first.LambdaBits || res.Iterations != first.Iterations ||
			res.Converged != first.Converged || res.Singular != first.Singular {
			return nil, fmt.Errorf("cluster: rank %d outcome diverges from rank 0 (λ bits %x vs %x, iters %d vs %d)",
				r, res.LambdaBits, first.LambdaBits, res.Iterations, first.Iterations)
		}
		chunk := make([]float64, len(res.ChunkBits))
		for i, bv := range res.ChunkBits {
			chunk[i] = math.Float64frombits(bv)
		}
		owned[r] = chunk
	}
	x, err := parallel.AssemblePower(part, b, cfg.N, owned)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Lambda:     math.Float64frombits(first.LambdaBits),
		X:          x,
		Iterations: first.Iterations,
		Converged:  first.Converged,
		Singular:   first.Singular,
		Respawns:   respawns,
		FinalEpoch: epoch,
	}, nil
}
