package cluster

import (
	"fmt"
	"math"
	"os"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/netwire"
	"repro/internal/parallel"
)

// RankOptions configures one rank process.
type RankOptions struct {
	Config
	// CtlAddr is the coordinator's control endpoint.
	CtlAddr string
	// Rank is the machine rank this process hosts.
	Rank int
}

// RunRank is a rank process's entire life: register with the coordinator,
// then loop the resume → restore → ready → go → iterate cycle until told
// to stop. Each go launches a fresh distributed machine incarnation whose
// only local rank is this one; an epoch abort (someone else was killed)
// unwinds the body through the machine's abort sentinel, reports
// quiesced, and waits for the next resume. Loss of the control connection
// terminates the process — an orphaned rank must not outlive its
// supervisor.
func RunRank(opt RankOptions) error {
	cfg := opt.Config.withDefaults()
	part, a, b, err := cfg.problem()
	if err != nil {
		return err
	}
	if opt.Rank < 0 || opt.Rank >= part.P {
		return fmt.Errorf("cluster: rank %d of %d", opt.Rank, part.P)
	}
	eng, err := parallel.NewRankEngine(a, parallel.Options{
		Part: part, B: b, Wiring: parallel.WiringP2P,
	}, opt.Rank)
	if err != nil {
		return err
	}
	plan, err := cfg.faultPlan()
	if err != nil {
		return err
	}
	copt := netwire.ClientOptions{FaultPlan: plan}
	if len(cfg.Hosts) > 0 {
		if len(cfg.Hosts) != part.P {
			return fmt.Errorf("cluster: hosts file lists %d hosts for %d ranks", len(cfg.Hosts), part.P)
		}
		copt.Bind = cfg.Hosts[opt.Rank]
	}
	cl, err := netwire.NewClientOpts(cfg.Network, opt.CtlAddr, opt.Rank, part.P, copt)
	if err != nil {
		return err
	}
	defer cl.Close()
	events := cl.Events()
	trace := func(format string, a ...any) {
		if os.Getenv("STTSV_CLUSTER_DEBUG") != "" {
			fmt.Fprintf(os.Stderr, "rank %d: "+format+"\n", append([]any{opt.Rank}, a...)...)
		}
	}

	for {
		// Park until the coordinator resumes (or retires) us. An abort
		// arriving here — this rank finished or was respawned while others
		// still ran — needs only the quiesced acknowledgment.
		var rs netwire.CtlEvent
	await:
		for {
			ev, ok := <-events
			if !ok {
				return fmt.Errorf("cluster: rank %d lost the coordinator", opt.Rank)
			}
			switch ev.Type {
			case "stop":
				return nil
			case "abort":
				cl.Quiesced(ev.Epoch)
			case "resume":
				rs = ev
				break await
			default:
				trace("await: ignoring %q", ev.Type)
			}
		}
		epoch, startIter := rs.Epoch, rs.Iter
		trace("resume epoch %d iter %d", epoch, startIter)
		if startIter == 0 {
			eng.SeedPower(cfg.Seed)
		} else {
			st, err := readCkpt(cfg.CkptDir, opt.Rank, startIter)
			if err != nil {
				return err
			}
			if err := eng.Restore(st); err != nil {
				return err
			}
		}
		if err := cl.Ready(epoch); err != nil {
			return err
		}

		// Await the go (all ranks restored) — or an abort, if another rank
		// died between our ready and the release.
		aborted := false
	release:
		for {
			ev, ok := <-events
			if !ok {
				return fmt.Errorf("cluster: rank %d lost the coordinator", opt.Rank)
			}
			switch ev.Type {
			case "stop":
				return nil
			case "abort":
				cl.Quiesced(ev.Epoch)
				aborted = true
				break release
			case "go":
				trace("go (epoch %d)", epoch)
				break release
			}
		}
		if aborted {
			continue
		}

		// One machine incarnation: iterate from startIter, checkpointing
		// durably before each control-plane acknowledgment.
		var (
			finalIter           = startIter
			converged, singular bool
			done                bool
			ckptErr             error
		)
		runCfg := machine.RunConfig{
			Backend:    cl,
			LocalRanks: []int{opt.Rank},
			StartEpoch: epoch,
		}
		if plan.Active() {
			// Chaos-perturbed frames need the reliable transport above the
			// wire. The retry budget is effectively unbounded — the
			// supervisor's abort, not the transport, decides when a silent
			// peer means a dead rank.
			runCfg.Transport = fault.TransportOpts(fault.Plan{}, fault.ReliableOptions{MaxAttempts: 1 << 20})
		}
		h, err := machine.StartWith(part.P, runCfg, func(c *machine.Comm) {
			defer func() {
				if r := recover(); r != nil {
					if machine.IsAbort(r) {
						return // epoch fenced; state rolls back to the last checkpoint
					}
					panic(r)
				}
			}()
			for iter := startIter; iter < cfg.MaxIter; {
				stop, conv, sing := eng.Iterate(c, cfg.Tol)
				iter++
				trace("epoch %d: completed iter %d", epoch, iter)
				if err := writeCkpt(cfg.CkptDir, opt.Rank, iter, eng.State()); err != nil {
					ckptErr = err
					return
				}
				cl.Ckpt(iter)
				finalIter, converged, singular = iter, conv, sing
				if stop {
					break
				}
			}
			done = true
		})
		if err != nil {
			return err
		}

		// Drive the machine while watching the control plane: an abort
		// order fences the epoch and unwinds the body.
		waitCh := make(chan error, 1)
		go func() {
			_, werr := h.Wait()
			waitCh <- werr
		}()
		var abortedEpoch = int64(-1)
		stopping := false
	running:
		for {
			select {
			case ev, ok := <-events:
				if !ok {
					h.Abort()
					<-waitCh
					return fmt.Errorf("cluster: rank %d lost the coordinator", opt.Rank)
				}
				switch ev.Type {
				case "abort":
					abortedEpoch = ev.Epoch
					h.Abort()
				case "stop":
					stopping = true
					h.Abort()
				}
			case werr := <-waitCh:
				if werr != nil {
					return werr
				}
				break running
			}
		}
		if ckptErr != nil {
			return ckptErr
		}
		if stopping {
			return nil
		}
		if abortedEpoch >= 0 {
			trace("aborted at epoch %d, quiescing", abortedEpoch)
			cl.Quiesced(abortedEpoch)
			continue
		}
		if !done {
			trace("epoch %d: body unwound without done", epoch)
			// The body unwound through the abort sentinel without a local
			// abort order: the machine fenced the epoch internally. Park and
			// report; the coordinator decides what happens next.
			cl.Quiesced(epoch)
			continue
		}

		// Completed every iteration: ship the outcome. The process then
		// parks again — a peer killed after this rank finished still needs
		// the survivors to replay from the committed checkpoint.
		chunk := eng.OwnedWords()
		bits := make([]uint64, len(chunk))
		for i, v := range chunk {
			bits[i] = math.Float64bits(v)
		}
		trace("epoch %d: result after iter %d", epoch, finalIter)
		if err := cl.Result(math.Float64bits(eng.Lambda()), finalIter, converged, singular, bits); err != nil {
			return err
		}
	}
}
