// Package cluster turns the distributed pieces — the netwire control and
// data planes, the per-rank power-method engine, durable checkpoints —
// into a multi-process runtime: one coordinator process supervising P
// rank processes over TCP or unix-domain sockets. A rank killed with
// SIGKILL mid-run is respawned, every survivor rolls back to the last
// globally committed checkpoint, and the method resumes in a new wire
// epoch; the committed results are bit-identical to the single-process
// simulated run.
package cluster

import (
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// Config describes one distributed power-method problem. Every process —
// coordinator and ranks — derives the identical tensor, partition and
// start vector from it, so only these few scalars ever cross a process
// boundary at launch.
type Config struct {
	// Network is "tcp" or "unix".
	Network string
	// Q selects the spherical partition (P = q²+q+1 ranks).
	Q int
	// N is the problem dimension; the block edge is ceil(N/M).
	N int
	// Seed determines the random tensor and the power-method start vector.
	Seed int64
	// MaxIter and Tol are the power-method controls (defaults 200, 1e-12).
	MaxIter int
	// Tol is the eigenvalue convergence tolerance.
	Tol float64
	// CkptDir is the shared directory for per-rank checkpoint files.
	CkptDir string
	// Faults is an optional socket-level fault plan in fault.ParsePlan
	// syntax (drop/dup/reorder/corrupt/stall/reset). An active plan
	// perturbs every rank's outbound data frames and runs a reliable
	// transport above the wire, so committed results stay bit-identical.
	Faults string
	// Hosts optionally lists one bind address per rank ("host" or
	// "host:port", rank order — the netwire hosts-file format). Empty
	// means every rank binds loopback with an ephemeral port. tcp only.
	Hosts []string
}

func (cfg *Config) withDefaults() Config {
	out := *cfg
	if out.Network == "" {
		out.Network = "tcp"
	}
	if out.MaxIter <= 0 {
		out.MaxIter = 200
	}
	if out.Tol <= 0 {
		out.Tol = 1e-12
	}
	return out
}

// faultPlan parses and validates the socket fault schedule. Deterministic
// crash faults are rejected: a respawned rank replays the same operation
// sequence and would re-crash at the same point forever. Process death in
// a cluster run is exercised by killing the rank process instead.
func (cfg *Config) faultPlan() (fault.Plan, error) {
	plan, err := fault.ParsePlan(cfg.Faults)
	if err != nil {
		return fault.Plan{}, err
	}
	if len(plan.Crash) > 0 {
		return fault.Plan{}, fmt.Errorf("cluster: fault plan %q schedules a deterministic crash; kill the rank process instead", cfg.Faults)
	}
	return plan, nil
}

// layout resolves the partition and block edge (no tensor entries).
func (cfg *Config) layout() (*partition.Tetrahedral, int, error) {
	part, err := partition.NewSpherical(cfg.Q)
	if err != nil {
		return nil, 0, err
	}
	if cfg.N < 1 {
		return nil, 0, fmt.Errorf("cluster: dimension %d", cfg.N)
	}
	b := (cfg.N + part.M - 1) / part.M
	return part, b, nil
}

// problem materializes the deterministic shared tensor. Every process
// calls this with the same config and obtains bit-identical entries.
func (cfg *Config) problem() (*partition.Tetrahedral, *tensor.Symmetric, int, error) {
	part, b, err := cfg.layout()
	if err != nil {
		return nil, nil, 0, err
	}
	a := tensor.Random(cfg.N, rand.New(rand.NewSource(cfg.Seed)))
	return part, a, b, nil
}
