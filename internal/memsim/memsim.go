// Package memsim provides a two-level memory simulator for studying the
// *sequential* I/O behavior of the STTSV kernels — the setting of the
// sequential communication lower bounds the paper builds on (§2: Hong &
// Kung's red-blue pebble game; Beaumont et al.'s I/O-optimal symmetric
// kernels). The parallel results of the paper are memory-independent, but
// the blocked kernels that Algorithm 5 executes locally are exactly the
// tiling that makes the sequential computation cache-efficient; this
// package quantifies that.
//
// The model is a fully associative LRU cache of M words with line size L
// words in front of an infinite slow memory. Kernels are replayed as
// address traces (values are irrelevant to traffic), and the metric is
// words moved between the levels.
package memsim

import (
	"container/list"
	"fmt"

	"repro/internal/intmath"
)

// Cache is a fully associative LRU cache. Addresses are word-granular;
// lines group L consecutive words.
type Cache struct {
	lines    int // capacity in lines
	lineSize int
	lru      *list.List            // front = most recent; values are line ids
	index    map[int]*list.Element // line id -> node
	misses   int64
	accesses int64
}

// NewCache returns a cache of capacityWords words with lineWords-word
// lines. capacityWords must be a positive multiple of lineWords.
func NewCache(capacityWords, lineWords int) *Cache {
	if lineWords < 1 || capacityWords < lineWords || capacityWords%lineWords != 0 {
		panic(fmt.Sprintf("memsim: NewCache(%d, %d)", capacityWords, lineWords))
	}
	return &Cache{
		lines:    capacityWords / lineWords,
		lineSize: lineWords,
		lru:      list.New(),
		index:    make(map[int]*list.Element),
	}
}

// Access touches one word (read or write — the traffic model is
// symmetric, with write-allocate and no write-back distinction).
func (c *Cache) Access(addr int) {
	c.accesses++
	line := addr / c.lineSize
	if el, ok := c.index[line]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.misses++
	if c.lru.Len() == c.lines {
		back := c.lru.Back()
		delete(c.index, back.Value.(int))
		c.lru.Remove(back)
	}
	c.index[line] = c.lru.PushFront(line)
}

// AccessRange touches words [addr, addr+n).
func (c *Cache) AccessRange(addr, n int) {
	for i := 0; i < n; i++ {
		c.Access(addr + i)
	}
}

// Misses returns the number of line misses so far.
func (c *Cache) Misses() int64 { return c.misses }

// TrafficWords returns words moved from slow memory: misses × line size.
func (c *Cache) TrafficWords() int64 { return c.misses * int64(c.lineSize) }

// Accesses returns the number of word accesses replayed.
func (c *Cache) Accesses() int64 { return c.accesses }

// Arena assigns disjoint word-address ranges to arrays.
type Arena struct{ next int }

// Alloc reserves n words and returns the base address.
func (a *Arena) Alloc(n int) int {
	base := a.next
	a.next += n
	return base
}

// --- kernel address traces ---

// layout bundles the base addresses of the STTSV operands.
type layout struct {
	a, x, y int // bases: packed tensor, input vector, output vector
}

func newLayout(n int) (*Arena, layout) {
	var ar Arena
	return &ar, layout{
		a: ar.Alloc(intmath.Tetrahedral(n)),
		x: ar.Alloc(n),
		y: ar.Alloc(n),
	}
}

// TracePacked replays Algorithm 4's access pattern (packed tensor,
// element-wise updates of up to three y entries per element) and returns
// the slow-memory traffic in words.
func TracePacked(n int, c *Cache) int64 {
	_, l := newLayout(n)
	before := c.TrafficWords()
	idx := 0
	for i := 0; i < n; i++ {
		c.Access(l.x + i)
		for j := 0; j < i; j++ {
			c.Access(l.x + j)
			for k := 0; k < j; k++ {
				c.Access(l.a + idx)
				idx++
				c.Access(l.x + k)
				c.Access(l.y + i)
				c.Access(l.y + j)
				c.Access(l.y + k)
			}
			c.Access(l.a + idx) // k == j
			idx++
			c.Access(l.y + i)
			c.Access(l.y + j)
		}
		for k := 0; k < i; k++ {
			c.Access(l.a + idx)
			idx++
			c.Access(l.x + k)
			c.Access(l.y + i)
			c.Access(l.y + k)
		}
		c.Access(l.a + idx) // central
		idx++
		c.Access(l.y + i)
	}
	return c.TrafficWords() - before
}

// TraceBlocked replays the tetrahedral-blocked kernel schedule: blocks of
// edge b are streamed one at a time, with the three x and three y row
// blocks touched per tensor element of the block. The tensor is stored
// block-contiguously (each block's packed data is consecutive), which is
// what the partition layer provides.
func TraceBlocked(n, b int, c *Cache) int64 {
	if b < 1 || n%b != 0 {
		panic(fmt.Sprintf("memsim: TraceBlocked(%d, %d)", n, b))
	}
	m := n / b
	var ar Arena
	xBase := ar.Alloc(n)
	yBase := ar.Alloc(n)
	before := c.TrafficWords()
	// Enumerate blocks of the lower block tetrahedron; each block's data
	// is a fresh contiguous range (streamed once).
	for I := 0; I < m; I++ {
		for J := 0; J <= I; J++ {
			for K := 0; K <= J; K++ {
				words := blockWords(I, J, K, b)
				aBase := ar.Alloc(words)
				traceBlock(c, aBase, xBase, yBase, I, J, K, b)
			}
		}
	}
	return c.TrafficWords() - before
}

func blockWords(I, J, K, b int) int {
	switch {
	case I > J && J > K:
		return b * b * b
	case I == J && J == K:
		return intmath.Tetrahedral(b)
	default:
		return b * b * (b + 1) / 2
	}
}

// traceBlock replays one block's element loop: tensor data streams
// sequentially while x/y row blocks are reused heavily.
func traceBlock(c *Cache, aBase, xBase, yBase, I, J, K, b int) {
	idx := aBase
	visit := func(di, dj, dk int) {
		c.Access(idx)
		idx++
		c.Access(xBase + J*b + dj)
		c.Access(xBase + K*b + dk)
		c.Access(yBase + I*b + di)
		// The off-diagonal update also reads x_I and writes y_J, y_K.
		c.Access(xBase + I*b + di)
		c.Access(yBase + J*b + dj)
		c.Access(yBase + K*b + dk)
	}
	switch {
	case I > J && J > K:
		for di := 0; di < b; di++ {
			for dj := 0; dj < b; dj++ {
				for dk := 0; dk < b; dk++ {
					visit(di, dj, dk)
				}
			}
		}
	case I == J && J > K:
		for di := 0; di < b; di++ {
			for dj := 0; dj <= di; dj++ {
				for dk := 0; dk < b; dk++ {
					visit(di, dj, dk)
				}
			}
		}
	case I > J && J == K:
		for di := 0; di < b; di++ {
			for dj := 0; dj < b; dj++ {
				for dk := 0; dk <= dj; dk++ {
					visit(di, dj, dk)
				}
			}
		}
	default:
		for di := 0; di < b; di++ {
			for dj := 0; dj <= di; dj++ {
				for dk := 0; dk <= dj; dk++ {
					visit(di, dj, dk)
				}
			}
		}
	}
}

// CompulsoryWords returns the unavoidable traffic: every operand word must
// be loaded at least once — the tensor (n(n+1)(n+2)/6), x and y (n each).
func CompulsoryWords(n int) int64 {
	return int64(intmath.Tetrahedral(n)) + 2*int64(n)
}
