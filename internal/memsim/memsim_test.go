package memsim

import (
	"testing"

	"repro/internal/intmath"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(4, 1) // 4 one-word lines
	c.Access(0)
	c.Access(1)
	c.Access(0) // hit
	if c.Misses() != 2 {
		t.Fatalf("misses = %d, want 2", c.Misses())
	}
	if c.Accesses() != 3 {
		t.Fatalf("accesses = %d", c.Accesses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2, 1)
	c.Access(0)
	c.Access(1)
	c.Access(0) // 0 now most recent
	c.Access(2) // evicts 1
	c.Access(0) // hit
	c.Access(1) // miss again
	if c.Misses() != 4 {
		t.Fatalf("misses = %d, want 4", c.Misses())
	}
}

func TestCacheLineGranularity(t *testing.T) {
	c := NewCache(8, 4)
	c.AccessRange(0, 4) // one line: one miss
	if c.Misses() != 1 {
		t.Fatalf("misses = %d, want 1", c.Misses())
	}
	if c.TrafficWords() != 4 {
		t.Fatalf("traffic = %d, want 4", c.TrafficWords())
	}
	c.Access(5) // second line
	if c.Misses() != 2 {
		t.Fatalf("misses = %d, want 2", c.Misses())
	}
}

func TestCacheValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {3, 4}, {10, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			NewCache(bad[0], bad[1])
		}()
	}
}

func TestArena(t *testing.T) {
	var a Arena
	b1 := a.Alloc(10)
	b2 := a.Alloc(5)
	if b1 != 0 || b2 != 10 {
		t.Fatalf("arena bases %d %d", b1, b2)
	}
}

func TestTrafficAtLeastCompulsory(t *testing.T) {
	n := 24
	for _, mWords := range []int{64, 256, 4096} {
		c := NewCache(mWords, 1)
		got := TracePacked(n, c)
		if got < CompulsoryWords(n) {
			t.Fatalf("M=%d: traffic %d below compulsory %d", mWords, got, CompulsoryWords(n))
		}
	}
}

func TestInfiniteCacheIsCompulsoryOnly(t *testing.T) {
	// With a cache larger than the whole footprint, traffic equals the
	// operand sizes exactly (every word missed once).
	n := 16
	foot := intmath.Tetrahedral(n) + 2*n
	c := NewCache(2*foot, 1)
	got := TracePacked(n, c)
	if got != CompulsoryWords(n) {
		t.Fatalf("infinite cache traffic %d, want %d", got, CompulsoryWords(n))
	}
}

func TestBlockedBeatsUnblockedWhenCacheIsSmall(t *testing.T) {
	// The blocked schedule keeps six b-length row blocks hot; with a
	// cache big enough for them but far smaller than the vectors, it
	// approaches compulsory traffic while the i-j-k loop thrashes y and x.
	n, b := 48, 8
	mWords := 8 * b // fits the working set of one block, not the vectors
	cu := NewCache(mWords, 1)
	unblocked := TracePacked(n, cu)
	cb := NewCache(mWords, 1)
	blocked := TraceBlocked(n, b, cb)
	if blocked >= unblocked {
		t.Fatalf("blocked traffic %d not below unblocked %d", blocked, unblocked)
	}
	// Blocked should be within a small factor of compulsory.
	if blocked > 3*CompulsoryWords(n) {
		t.Fatalf("blocked traffic %d too far above compulsory %d", blocked, CompulsoryWords(n))
	}
}

func TestBlockedTrafficDecreasesWithCache(t *testing.T) {
	n, b := 36, 6
	prev := int64(1 << 62)
	for _, mWords := range []int{16, 64, 256, 4096} {
		c := NewCache(mWords, 1)
		got := TraceBlocked(n, b, c)
		if got > prev {
			t.Fatalf("M=%d: traffic %d increased from %d", mWords, got, prev)
		}
		prev = got
	}
}

func TestTraceBlockedValidation(t *testing.T) {
	c := NewCache(64, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	TraceBlocked(10, 3, c) // 3 does not divide 10
}

func TestTraceAccessCountsMatchWork(t *testing.T) {
	// Both traces perform accesses proportional to the lower-tetrahedron
	// element count; the blocked trace touches the padded full-block
	// elements. Sanity: the packed trace touches each tensor word exactly
	// once.
	n := 12
	c := NewCache(1<<20, 1)
	TracePacked(n, c)
	// Tensor words + x reads + y updates: at minimum one access per
	// tensor element.
	if c.Accesses() < int64(intmath.Tetrahedral(n)) {
		t.Fatalf("accesses %d below tensor size", c.Accesses())
	}
}

func BenchmarkTracePacked(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewCache(1024, 8)
		TracePacked(32, c)
	}
}
