package hopm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
	"repro/internal/tensor"
)

func randFactors(n, r int, seed int64) *la.Matrix {
	rng := rand.New(rand.NewSource(seed))
	x := la.NewMatrix(n, r)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

func TestCPGradientMatchesFiniteDifferences(t *testing.T) {
	// E8: Algorithm 2's analytic gradient agrees with central finite
	// differences of the objective.
	rng := rand.New(rand.NewSource(20))
	n, r := 6, 3
	a := tensor.Random(n, rng)
	x := randFactors(n, r, 21)
	grad := CPGradientTensor(a, x)

	const h = 1e-6
	for i := 0; i < n; i++ {
		for l := 0; l < r; l++ {
			xp := x.Clone()
			xp.Set(i, l, x.At(i, l)+h)
			xm := x.Clone()
			xm.Set(i, l, x.At(i, l)-h)
			fd := (CPObjective(a, xp) - CPObjective(a, xm)) / (2 * h)
			an := grad.At(i, l)
			if math.Abs(fd-an) > 1e-4*(1+math.Abs(an)) {
				t.Fatalf("gradient (%d,%d): analytic %g, FD %g", i, l, an, fd)
			}
		}
	}
}

func TestCPGradientZeroAtExactDecomposition(t *testing.T) {
	// If A = Σ x_ℓ∘x_ℓ∘x_ℓ exactly, the gradient at X is zero and the
	// objective vanishes.
	n, r := 8, 2
	x := randFactors(n, r, 22)
	vecs := make([][]float64, r)
	w := make([]float64, r)
	for l := 0; l < r; l++ {
		vecs[l] = x.Col(l)
		w[l] = 1
	}
	a, err := tensor.CP(w, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if obj := CPObjective(a, x); math.Abs(obj) > 1e-9 {
		t.Fatalf("objective at exact fit = %g", obj)
	}
	grad := CPGradientTensor(a, x)
	if g := grad.FrobeniusNorm(); g > 1e-8 {
		t.Fatalf("gradient norm at exact fit = %g", g)
	}
}

func TestCPObjectiveMatchesDirectResidual(t *testing.T) {
	// Cross-check the expanded objective against the literal
	// 1/6·‖A − Σ x∘x∘x‖² computed densely.
	rng := rand.New(rand.NewSource(23))
	n, r := 5, 2
	a := tensor.Random(n, rng)
	x := randFactors(n, r, 24)
	vecs := make([][]float64, r)
	w := make([]float64, r)
	for l := 0; l < r; l++ {
		vecs[l] = x.Col(l)
		w[l] = 1
	}
	model, err := tensor.CP(w, vecs)
	if err != nil {
		t.Fatal(err)
	}
	diff := a.Clone()
	for i := range diff.Data {
		diff.Data[i] -= model.Data[i]
	}
	norm := diff.FrobeniusNorm()
	want := norm * norm / 6
	if got := CPObjective(a, x); math.Abs(got-want) > 1e-8*(1+want) {
		t.Fatalf("objective %g, direct %g", got, want)
	}
}

func TestSymmetricCPRecoversPlantedFactors(t *testing.T) {
	// E8: gradient descent on a planted rank-2 tensor drives the
	// objective to ≈ 0.
	n, r := 8, 2
	planted := randFactors(n, r, 25)
	vecs := make([][]float64, r)
	w := make([]float64, r)
	for l := 0; l < r; l++ {
		vecs[l] = planted.Col(l)
		w[l] = 1
	}
	a, err := tensor.CP(w, vecs)
	if err != nil {
		t.Fatal(err)
	}
	// Start near the planted factors (global convergence is not
	// guaranteed for random starts; the test is about the machinery).
	x0 := planted.Clone()
	rng := rand.New(rand.NewSource(26))
	for i := range x0.Data {
		x0.Data[i] += 0.05 * rng.NormFloat64()
	}
	res, err := SymmetricCP(a, r, CPOptions{X0: x0, MaxIter: 3000, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	start := CPObjective(a, x0)
	if res.Objective > start*1e-6 && res.Objective > 1e-10 {
		t.Fatalf("objective only reached %g from %g", res.Objective, start)
	}
}

func TestSymmetricCPValidation(t *testing.T) {
	a := tensor.NewSymmetric(4)
	if _, err := SymmetricCP(a, 0, CPOptions{}); err == nil {
		t.Error("rank 0 accepted")
	}
	if _, err := SymmetricCP(a, 2, CPOptions{X0: la.NewMatrix(3, 2)}); err == nil {
		t.Error("mismatched X0 accepted")
	}
}

func TestExtractRankOnesOdeco(t *testing.T) {
	// Orthogonally decomposable tensor: deflation recovers both weights.
	n := 9
	e1 := make([]float64, n)
	e1[0] = 1
	e2 := make([]float64, n)
	e2[4] = 1
	a, err := tensor.CP([]float64{4, 2}, [][]float64{e1, e2})
	if err != nil {
		t.Fatal(err)
	}
	w, v, err := ExtractRankOnes(a, 2, Options{Seed: 27, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-4) > 1e-6 || math.Abs(w[1]-2) > 1e-6 {
		t.Fatalf("weights = %v, want [4 2]", w)
	}
	if math.Abs(math.Abs(v[0][0])-1) > 1e-5 || math.Abs(math.Abs(v[1][4])-1) > 1e-5 {
		t.Fatalf("vectors not aligned with planted components")
	}
	// Reconstruction check: Σ w v∘v∘v ≈ original.
	recon, err := tensor.CP(w, v)
	if err != nil {
		t.Fatal(err)
	}
	diff := a.Clone()
	for i := range diff.Data {
		diff.Data[i] -= recon.Data[i]
	}
	if d := diff.FrobeniusNorm(); d > 1e-5 {
		t.Fatalf("reconstruction error %g", d)
	}
}

func TestDeflateRemovesComponent(t *testing.T) {
	n := 7
	v := unitVec(n, 28)
	a := tensor.RankOne(2.5, v)
	deflate(a, 2.5, v)
	for _, val := range a.Data {
		if math.Abs(val) > 1e-12 {
			t.Fatalf("deflation left residue %g", val)
		}
	}
}

func BenchmarkCPGradient(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := tensor.Random(40, rng)
	x := randFactors(40, 5, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CPGradientTensor(a, x)
	}
}

func BenchmarkPowerMethodIteration(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := tensor.Random(60, rng)
	f := PackedSTTSV(a)
	x := unitVec(60, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(x)
	}
}
