// Package hopm implements the applications that motivate the STTSV kernel
// (§1 of the paper):
//
//   - Algorithm 1, the (symmetric) higher-order power method for
//     Z-eigenpairs of a symmetric 3-tensor, plus the shifted variant
//     SS-HOPM (Kolda & Mayo) whose convergence is guaranteed for a large
//     enough shift;
//   - Algorithm 2, the gradient of the symmetric CP objective
//     f(X) = 1/6·‖A − Σ_ℓ x_ℓ∘x_ℓ∘x_ℓ‖²;
//   - a gradient-descent driver for symmetric CP decomposition and a
//     deflation loop that extracts successive rank-one components.
//
// Every STTSV evaluation goes through a pluggable function, so the same
// drivers run on the sequential kernels or on the simulated parallel
// Algorithm 5.
package hopm

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/la"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

// STTSV evaluates y = A ×₂ x ×₃ x for a fixed tensor. The hopm drivers
// accept any implementation (sequential, blocked, or simulated-parallel).
type STTSV func(x []float64) []float64

// PackedSTTSV adapts the sequential Algorithm 4 kernel to the STTSV
// function type.
func PackedSTTSV(a *tensor.Symmetric) STTSV {
	return func(x []float64) []float64 { return sttsv.Packed(a, x, nil) }
}

// BlockedSTTSV adapts the reusable block-packed operator: the tensor is
// extracted into tiled block storage once, and every evaluation — one per
// power iteration — reuses it, optionally across `workers` cores
// (0 selects GOMAXPROCS, 1 is sequential). This is the local-compute
// engine the repeated-STTSV drivers should prefer over re-packing per
// iteration.
func BlockedSTTSV(a *tensor.Symmetric, m, workers int) STTSV {
	op := sttsv.NewOperator(a, m, workers)
	return func(x []float64) []float64 { return op.Apply(x, nil) }
}

// Options configures the power method.
type Options struct {
	// MaxIter bounds the iteration count (default 1000).
	MaxIter int
	// Tol is the convergence tolerance on the eigenvalue estimate
	// (default 1e-12).
	Tol float64
	// Shift is the SS-HOPM shift α: the update uses ŷ = y + α·x. Zero
	// gives the plain Algorithm 1 (S-HOPM).
	Shift float64
	// X0 is the starting vector; when nil a deterministic random unit
	// vector drawn from Seed is used.
	X0 []float64
	// Seed drives the random start when X0 is nil.
	Seed int64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxIter == 0 {
		out.MaxIter = 1000
	}
	if out.Tol == 0 {
		out.Tol = 1e-12
	}
	return out
}

// Eigenpair is a computed Z-eigenpair candidate.
type Eigenpair struct {
	// Lambda is the Z-eigenvalue estimate λ = A ×₁x ×₂x ×₃x.
	Lambda float64
	// X is the unit eigenvector estimate.
	X []float64
	// Iterations is the number of STTSV evaluations performed.
	Iterations int
	// Residual is ‖A ×₂x ×₃x − λx‖₂ at termination.
	Residual float64
	// Converged reports whether the eigenvalue estimate stabilized within
	// tolerance before MaxIter.
	Converged bool
}

// PowerMethod runs Algorithm 1 (or SS-HOPM when opts.Shift != 0) on the
// given STTSV oracle for dimension n.
func PowerMethod(f STTSV, n int, opts Options) (*Eigenpair, error) {
	if n < 1 {
		return nil, fmt.Errorf("hopm: dimension %d", n)
	}
	o := opts.withDefaults()
	x := make([]float64, n)
	if o.X0 != nil {
		if len(o.X0) != n {
			return nil, fmt.Errorf("hopm: X0 length %d, want %d", len(o.X0), n)
		}
		copy(x, o.X0)
	} else {
		rng := rand.New(rand.NewSource(o.Seed))
		for i := range x {
			x[i] = rng.NormFloat64()
		}
	}
	if la.Normalize(x) == 0 {
		return nil, fmt.Errorf("hopm: zero starting vector")
	}

	pair := &Eigenpair{X: x}
	prev := math.Inf(1)
	for it := 1; it <= o.MaxIter; it++ {
		y := f(x)
		if len(y) != n {
			return nil, fmt.Errorf("hopm: STTSV returned length %d, want %d", len(y), n)
		}
		lambda := la.Dot(x, y)
		pair.Lambda = lambda
		pair.Iterations = it
		// Residual before the update: ‖y − λx‖.
		res := 0.0
		for i := range y {
			d := y[i] - lambda*x[i]
			res += d * d
		}
		pair.Residual = math.Sqrt(res)
		if math.Abs(lambda-prev) <= o.Tol*(1+math.Abs(lambda)) {
			pair.Converged = true
			break
		}
		prev = lambda
		if o.Shift != 0 {
			la.Axpy(o.Shift, x, y)
		}
		copy(x, y)
		if la.Normalize(x) == 0 {
			return nil, fmt.Errorf("hopm: iterate collapsed to zero (singular tensor?)")
		}
	}
	return pair, nil
}

// SuggestedShift returns a shift α that makes SS-HOPM provably convergent:
// any α > β(A) works, where β(A) is bounded by the maximum absolute entry
// times n² (a crude but safe bound from the Gershgorin-style estimate).
func SuggestedShift(a *tensor.Symmetric) float64 {
	maxAbs := 0.0
	for _, v := range a.Data {
		if m := math.Abs(v); m > maxAbs {
			maxAbs = m
		}
	}
	return maxAbs * float64(a.N) * float64(a.N)
}

// Residual returns ‖A ×₂x ×₃x − λx‖₂ for an eigenpair candidate, using the
// supplied STTSV oracle.
func Residual(f STTSV, x []float64, lambda float64) float64 {
	y := f(x)
	s := 0.0
	for i := range y {
		d := y[i] - lambda*x[i]
		s += d * d
	}
	return math.Sqrt(s)
}
