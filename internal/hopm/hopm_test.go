package hopm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
	"repro/internal/tensor"
)

func unitVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	la.Normalize(x)
	return x
}

func TestPowerMethodRankOne(t *testing.T) {
	// A = 3·v∘v∘v: unique dominant Z-eigenpair (3, v).
	n := 15
	v := unitVec(n, 1)
	a := tensor.RankOne(3, v)
	pair, err := PowerMethod(PackedSTTSV(a), n, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(pair.Lambda-3) > 1e-8 {
		t.Fatalf("lambda = %g, want 3", pair.Lambda)
	}
	// Eigenvector up to sign.
	d := math.Abs(math.Abs(la.Dot(pair.X, v)) - 1)
	if d > 1e-8 {
		t.Fatalf("eigenvector alignment off by %g", d)
	}
	if pair.Residual > 1e-8 {
		t.Fatalf("residual %g", pair.Residual)
	}
}

func TestPowerMethodOrthogonalComponents(t *testing.T) {
	// Odeco tensor with separated weights: power method finds the
	// dominant component.
	n := 10
	e1 := make([]float64, n)
	e1[0] = 1
	e2 := make([]float64, n)
	e2[1] = 1
	a, err := tensor.CP([]float64{5, 2}, [][]float64{e1, e2})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := PowerMethod(PackedSTTSV(a), n, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pair.Lambda-5) > 1e-8 {
		t.Fatalf("lambda = %g, want 5", pair.Lambda)
	}
	if math.Abs(math.Abs(pair.X[0])-1) > 1e-6 {
		t.Fatalf("eigenvector = %v", pair.X[:3])
	}
}

func TestZEigenpairIdentity(t *testing.T) {
	// Any converged output satisfies A ×₂x ×₃x ≈ λx and ‖x‖ = 1 — the
	// defining identity of §1.
	rng := rand.New(rand.NewSource(4))
	a := tensor.Random(8, rng)
	f := PackedSTTSV(a)
	shift := SuggestedShift(a)
	pair, err := PowerMethod(f, 8, Options{Seed: 5, Shift: shift, MaxIter: 20000, Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Converged {
		t.Skipf("SS-HOPM did not converge in budget (shift %g)", shift)
	}
	if math.Abs(la.Norm(pair.X)-1) > 1e-10 {
		t.Fatalf("‖x‖ = %g", la.Norm(pair.X))
	}
	if r := Residual(f, pair.X, pair.Lambda); r > 1e-4 {
		t.Fatalf("eigenpair residual %g", r)
	}
}

func TestShiftedConvergesOnHardTensor(t *testing.T) {
	// Plain S-HOPM can oscillate; SS-HOPM with the suggested shift must
	// converge (Kolda & Mayo) — the "extension feature" behind Options.
	rng := rand.New(rand.NewSource(6))
	a := tensor.Random(6, rng)
	pair, err := PowerMethod(PackedSTTSV(a), 6, Options{
		Seed: 7, Shift: SuggestedShift(a), MaxIter: 50000, Tol: 1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Converged {
		t.Fatalf("SS-HOPM failed to converge; λ = %g, residual %g", pair.Lambda, pair.Residual)
	}
}

func TestPowerMethodDeterministicSeed(t *testing.T) {
	a := tensor.RankOne(2, unitVec(5, 8))
	p1, err := PowerMethod(PackedSTTSV(a), 5, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PowerMethod(PackedSTTSV(a), 5, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Lambda != p2.Lambda || p1.Iterations != p2.Iterations {
		t.Fatal("same seed gave different runs")
	}
}

func TestPowerMethodValidation(t *testing.T) {
	a := tensor.NewSymmetric(3)
	if _, err := PowerMethod(PackedSTTSV(a), 0, Options{}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := PowerMethod(PackedSTTSV(a), 3, Options{X0: []float64{1}}); err == nil {
		t.Error("short X0 accepted")
	}
	if _, err := PowerMethod(PackedSTTSV(a), 3, Options{X0: []float64{0, 0, 0}}); err == nil {
		t.Error("zero X0 accepted")
	}
	// Zero tensor: first iterate collapses.
	if _, err := PowerMethod(PackedSTTSV(a), 3, Options{X0: []float64{1, 0, 0}, Tol: 1e-300}); err == nil {
		t.Error("collapse not detected")
	}
}

func TestPowerMethodX0Honored(t *testing.T) {
	n := 6
	v := unitVec(n, 10)
	a := tensor.RankOne(1, v)
	pair, err := PowerMethod(PackedSTTSV(a), n, Options{X0: v})
	if err != nil {
		t.Fatal(err)
	}
	if pair.Iterations > 3 {
		t.Fatalf("start at eigenvector took %d iterations", pair.Iterations)
	}
}
