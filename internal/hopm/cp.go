package hopm

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/la"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

// CPGradient computes Algorithm 2: the gradient of
// f(X) = 1/6·‖A − Σ_ℓ x_ℓ∘x_ℓ∘x_ℓ‖² with respect to the n×r factor
// matrix X. Column ℓ of the result is (X·G)_ℓ − A ×₂x_ℓ ×₃x_ℓ with
// G = (XᵀX) ∗ (XᵀX). The r STTSV evaluations are the bottleneck the paper
// optimizes; they go through the supplied oracle factory so the same code
// path serves sequential and simulated-parallel backends.
func CPGradient(f STTSV, x *la.Matrix) *la.Matrix {
	n, r := x.Rows, x.Cols
	g := la.Hadamard(la.Gram(x), la.Gram(x))
	y := la.NewMatrix(n, r)
	for l := 0; l < r; l++ {
		y.SetCol(l, f(x.Col(l)))
	}
	return la.Sub(la.MatMul(x, g), y)
}

// CPGradientTensor is CPGradient with the sequential kernel bound to a.
func CPGradientTensor(a *tensor.Symmetric, x *la.Matrix) *la.Matrix {
	return CPGradient(PackedSTTSV(a), x)
}

// CPObjective evaluates f(X) = 1/6·‖A − Σ_ℓ x_ℓ∘x_ℓ∘x_ℓ‖² without forming
// the residual tensor, via
// ‖A‖² − 2·Σ_ℓ A×₁x_ℓ×₂x_ℓ×₃x_ℓ + Σ_{ℓ,m} ⟨x_ℓ, x_m⟩³.
func CPObjective(a *tensor.Symmetric, x *la.Matrix) float64 {
	if a.N != x.Rows {
		panic(fmt.Sprintf("hopm: tensor dimension %d, factor rows %d", a.N, x.Rows))
	}
	normA := a.FrobeniusNorm()
	total := normA * normA
	for l := 0; l < x.Cols; l++ {
		col := x.Col(l)
		y := sttsv.Packed(a, col, nil)
		total -= 2 * la.Dot(col, y)
	}
	gram := la.Gram(x)
	for l := 0; l < x.Cols; l++ {
		for m := 0; m < x.Cols; m++ {
			v := gram.At(l, m)
			total += v * v * v
		}
	}
	return total / 6
}

// CPResult reports a symmetric CP decomposition attempt.
type CPResult struct {
	// X is the n×r factor matrix.
	X *la.Matrix
	// Objective is the final f(X).
	Objective float64
	// Iterations is the number of gradient steps taken.
	Iterations int
	// Converged reports whether the gradient norm dropped below tolerance.
	Converged bool
}

// CPOptions configures the gradient-descent driver.
type CPOptions struct {
	// MaxIter bounds gradient steps (default 2000).
	MaxIter int
	// Tol is the convergence threshold on ‖∇f‖_F (default 1e-9).
	Tol float64
	// Step is the initial step size (default 1); backtracking halves it
	// until the Armijo condition holds.
	Step float64
	// Seed drives the random initialization when X0 is nil.
	Seed int64
	// X0 optionally fixes the starting factors.
	X0 *la.Matrix
}

// SymmetricCP fits a rank-r symmetric CP model to a by gradient descent
// with backtracking line search on the Algorithm 2 gradient.
func SymmetricCP(a *tensor.Symmetric, r int, opts CPOptions) (*CPResult, error) {
	if r < 1 {
		return nil, fmt.Errorf("hopm: rank %d", r)
	}
	maxIter := opts.MaxIter
	if maxIter == 0 {
		maxIter = 2000
	}
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-9
	}
	step := opts.Step
	if step == 0 {
		step = 1
	}

	var x *la.Matrix
	if opts.X0 != nil {
		if opts.X0.Rows != a.N || opts.X0.Cols != r {
			return nil, fmt.Errorf("hopm: X0 is %dx%d, want %dx%d", opts.X0.Rows, opts.X0.Cols, a.N, r)
		}
		x = opts.X0.Clone()
	} else {
		rng := rand.New(rand.NewSource(opts.Seed))
		x = la.NewMatrix(a.N, r)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64() / math.Sqrt(float64(a.N))
		}
	}

	res := &CPResult{X: x}
	obj := CPObjective(a, x)
	objFloor := 1e-14 * (1 + math.Abs(obj))
	for it := 1; it <= maxIter; it++ {
		if obj <= objFloor {
			// The fit is exact to machine precision; the gradient test
			// below can dither forever at this scale.
			res.Iterations = it
			res.Converged = true
			break
		}
		grad := CPGradientTensor(a, x)
		gnorm := grad.FrobeniusNorm()
		res.Iterations = it
		if gnorm <= tol {
			res.Converged = true
			break
		}
		// Backtracking line search on f.
		s := step
		improved := false
		for trial := 0; trial < 60; trial++ {
			cand := x.Clone()
			for i := range cand.Data {
				cand.Data[i] -= s * grad.Data[i]
			}
			candObj := CPObjective(a, cand)
			if candObj <= obj-1e-4*s*gnorm*gnorm {
				x, obj = cand, candObj
				res.X = x
				improved = true
				// Gentle step growth keeps progress fast once the scale
				// is found.
				step = s * 2
				break
			}
			s /= 2
		}
		if !improved {
			break // stalled: step underflowed
		}
	}
	res.Objective = obj
	return res, nil
}

// ExtractRankOnes pulls r successive rank-one components out of a by the
// power method plus deflation: find an eigenpair (λ, x), subtract
// λ·x∘x∘x, repeat. For (near-)orthogonally decomposable tensors this
// recovers the components; the returned weights/vectors are in extraction
// order.
func ExtractRankOnes(a *tensor.Symmetric, r int, opts Options) ([]float64, [][]float64, error) {
	work := a.Clone()
	weights := make([]float64, 0, r)
	vectors := make([][]float64, 0, r)
	for l := 0; l < r; l++ {
		best, err := bestOfRestarts(work, opts, 5)
		if err != nil {
			return nil, nil, fmt.Errorf("hopm: component %d: %w", l, err)
		}
		weights = append(weights, best.Lambda)
		vectors = append(vectors, best.X)
		deflate(work, best.Lambda, best.X)
	}
	return weights, vectors, nil
}

// bestOfRestarts runs the power method from several seeds and keeps the
// pair with the largest |λ| among converged runs (falling back to the
// largest overall).
func bestOfRestarts(a *tensor.Symmetric, opts Options, restarts int) (*Eigenpair, error) {
	f := PackedSTTSV(a)
	var best *Eigenpair
	for s := 0; s < restarts; s++ {
		o := opts
		o.Seed = opts.Seed + int64(s)
		pair, err := PowerMethod(f, a.N, o)
		if err != nil {
			return nil, err
		}
		if best == nil || better(pair, best) {
			best = pair
		}
	}
	return best, nil
}

func better(a, b *Eigenpair) bool {
	if a.Converged != b.Converged {
		return a.Converged
	}
	return math.Abs(a.Lambda) > math.Abs(b.Lambda)
}

// deflate subtracts λ·x∘x∘x from a in place.
func deflate(a *tensor.Symmetric, lambda float64, x []float64) {
	idx := 0
	for i := 0; i < a.N; i++ {
		for j := 0; j <= i; j++ {
			lij := lambda * x[i] * x[j]
			for k := 0; k <= j; k++ {
				a.Data[idx] -= lij * x[k]
				idx++
			}
		}
	}
}
