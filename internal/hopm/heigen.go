package hopm

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// This file adds the other eigenpair flavors that rely on the STTSV
// kernel (§1 cites algorithms "for computing other types of eigenvalues
// and eigenvectors, including H-eigenvalues"):
//
//   - HEigenPowerMethod: the Ng–Qi–Zhou (NQZ) iteration for the largest
//     H-eigenvalue of a nonnegative symmetric tensor, where an H-eigenpair
//     satisfies (A ×₂x ×₃x)_i = λ·x_i² with x entrywise nonnegative;
//   - AdaptivePowerMethod: SS-HOPM with a dynamically shrinking shift,
//     which converges like the safely-shifted method but avoids the
//     slow-down of a large static shift;
//   - EnumerateEigenpairs: a multi-start driver that collects distinct
//     converged Z-eigenpairs.

// HEigenpair is an H-eigenpair candidate of a nonnegative tensor.
type HEigenpair struct {
	// Lambda is the H-eigenvalue estimate.
	Lambda float64
	// X is the eigenvector, normalized to Σx_i² ... specifically scaled so
	// that Σ x_i³ = 1 (the natural normalization for order-3 H-eigenpairs).
	X []float64
	// Iterations counts STTSV evaluations.
	Iterations int
	// Residual is ‖A×₂x×₃x − λ·x^[2]‖₂ at termination, with x^[2] the
	// entrywise square.
	Residual float64
	// Converged reports whether the λ bounds met the tolerance.
	Converged bool
}

// HEigenPowerMethod runs the NQZ iteration: starting from a positive
// vector, y = A ×₂x ×₃x (entrywise positive for an irreducible
// nonnegative tensor), next x = y^{1/2} normalized. The eigenvalue is
// bracketed by min_i y_i/x_i² <= λ <= max_i y_i/x_i², and the bracket
// width is the convergence measure. The oracle must come from a
// nonnegative tensor; nonpositive intermediate values are an error.
func HEigenPowerMethod(f STTSV, n int, maxIter int, tol float64) (*HEigenpair, error) {
	if n < 1 {
		return nil, fmt.Errorf("hopm: dimension %d", n)
	}
	if maxIter <= 0 {
		maxIter = 5000
	}
	if tol <= 0 {
		tol = 1e-12
	}
	// Positive start.
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	normalizeCubic(x)

	pair := &HEigenpair{}
	for it := 1; it <= maxIter; it++ {
		y := f(x)
		pair.Iterations = it
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range y {
			if y[i] < 0 {
				return nil, fmt.Errorf("hopm: NQZ iterate turned negative at %d (tensor not nonnegative?)", i)
			}
			x2 := x[i] * x[i]
			if x2 == 0 {
				// Reducible tensor: component decoupled; treat ratio as
				// unconstrained.
				continue
			}
			r := y[i] / x2
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		if math.IsInf(lo, 1) {
			return nil, fmt.Errorf("hopm: NQZ iterate collapsed to zero")
		}
		pair.Lambda = (lo + hi) / 2
		pair.X = append(pair.X[:0], x...)
		res := 0.0
		for i := range y {
			d := y[i] - pair.Lambda*x[i]*x[i]
			res += d * d
		}
		pair.Residual = math.Sqrt(res)
		if hi-lo <= tol*(1+math.Abs(hi)) {
			pair.Converged = true
			return pair, nil
		}
		for i := range x {
			x[i] = math.Sqrt(y[i])
		}
		if normalizeCubic(x) == 0 {
			return nil, fmt.Errorf("hopm: NQZ iterate collapsed to zero")
		}
	}
	return pair, nil
}

// normalizeCubic scales x >= 0 so that Σ x_i³ = 1, returning the original
// cubic norm.
func normalizeCubic(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v * v
	}
	if s <= 0 {
		return 0
	}
	c := math.Cbrt(s)
	for i := range x {
		x[i] /= c
	}
	return c
}

// AdaptivePowerMethod runs SS-HOPM with a geometrically shrinking shift:
// start from the safe SuggestedShift-style value, and whenever the
// eigenvalue estimate moves monotonically for a few steps, halve the
// shift; on non-monotone behavior (the iteration would oscillate), double
// it back. In practice this converges in far fewer iterations than the
// static safe shift while retaining its robustness.
func AdaptivePowerMethod(f STTSV, n int, initialShift float64, opts Options) (*Eigenpair, error) {
	if initialShift <= 0 {
		return nil, fmt.Errorf("hopm: adaptive method needs a positive initial shift")
	}
	o := opts.withDefaults()
	x := make([]float64, n)
	if o.X0 != nil {
		if len(o.X0) != n {
			return nil, fmt.Errorf("hopm: X0 length %d, want %d", len(o.X0), n)
		}
		copy(x, o.X0)
	} else {
		for i := range x {
			x[i] = math.Sin(float64(i+1) + float64(o.Seed))
		}
	}
	if la.Normalize(x) == 0 {
		return nil, fmt.Errorf("hopm: zero starting vector")
	}

	shift := initialShift
	pair := &Eigenpair{X: x}
	prev := math.Inf(1)
	lastDelta := math.Inf(1)
	calm := 0
	for it := 1; it <= o.MaxIter; it++ {
		y := f(x)
		lambda := la.Dot(x, y)
		pair.Lambda = lambda
		pair.Iterations = it
		res := 0.0
		for i := range y {
			d := y[i] - lambda*x[i]
			res += d * d
		}
		pair.Residual = math.Sqrt(res)
		delta := math.Abs(lambda - prev)
		if delta <= o.Tol*(1+math.Abs(lambda)) {
			pair.Converged = true
			break
		}
		// Shrink the shift while progress is smooth; back off on
		// oscillation (eigenvalue estimate bouncing).
		if delta < lastDelta {
			calm++
			if calm >= 3 && shift > o.Tol {
				shift /= 2
				calm = 0
			}
		} else {
			shift = math.Min(shift*4, initialShift)
			calm = 0
		}
		lastDelta = delta
		prev = lambda
		la.Axpy(shift, x, y)
		copy(x, y)
		if la.Normalize(x) == 0 {
			return nil, fmt.Errorf("hopm: iterate collapsed to zero")
		}
	}
	return pair, nil
}

// EnumerateEigenpairs runs the (shifted) power method from many seeds and
// returns the distinct converged Z-eigenpairs found, sorted by decreasing
// |λ|. Two pairs are considered the same when their eigenvalues agree to
// within matchTol and their eigenvectors align up to sign.
func EnumerateEigenpairs(f STTSV, n, restarts int, opts Options, matchTol float64) ([]*Eigenpair, error) {
	if matchTol <= 0 {
		matchTol = 1e-6
	}
	var found []*Eigenpair
	for s := 0; s < restarts; s++ {
		o := opts
		o.Seed = opts.Seed + int64(s)*7919
		pair, err := PowerMethod(f, n, o)
		if err != nil {
			return nil, err
		}
		if !pair.Converged {
			continue
		}
		dup := false
		for _, g := range found {
			if math.Abs(g.Lambda-pair.Lambda) <= matchTol*(1+math.Abs(g.Lambda)) &&
				math.Abs(math.Abs(la.Dot(g.X, pair.X))-1) <= matchTol {
				dup = true
				break
			}
		}
		if !dup {
			found = append(found, pair)
		}
	}
	// Sort by |λ| descending (insertion sort; the list is short).
	for i := 1; i < len(found); i++ {
		p := found[i]
		j := i - 1
		for j >= 0 && math.Abs(found[j].Lambda) < math.Abs(p.Lambda) {
			found[j+1] = found[j]
			j--
		}
		found[j+1] = p
	}
	return found, nil
}
