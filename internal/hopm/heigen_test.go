package hopm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
	"repro/internal/tensor"
)

// positiveTensor builds a strictly positive symmetric tensor (irreducible,
// so the NQZ theory applies).
func positiveTensor(n int, seed int64) *tensor.Symmetric {
	rng := rand.New(rand.NewSource(seed))
	a := tensor.NewSymmetric(n)
	for i := range a.Data {
		a.Data[i] = rng.Float64() + 0.1
	}
	return a
}

func TestHEigenPowerMethodConverges(t *testing.T) {
	n := 12
	a := positiveTensor(n, 1)
	pair, err := HEigenPowerMethod(PackedSTTSV(a), n, 20000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Converged {
		t.Fatalf("NQZ did not converge; bracket residual %g", pair.Residual)
	}
	// H-eigenpair identity: A ×₂x ×₃x == λ·x^[2].
	y := PackedSTTSV(a)(pair.X)
	for i := range y {
		want := pair.Lambda * pair.X[i] * pair.X[i]
		if math.Abs(y[i]-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("H-identity violated at %d: %g vs %g", i, y[i], want)
		}
	}
	// Eigenvector is positive (Perron-Frobenius for tensors).
	for i, v := range pair.X {
		if v <= 0 {
			t.Fatalf("x[%d] = %g not positive", i, v)
		}
	}
}

func TestHEigenKnownValue(t *testing.T) {
	// All-ones tensor of dimension n: A x² has entries (Σx)², and for the
	// H-eigenpair with x = c·1: λ·c² = n²c² ... λ = n² with normalization
	// Σx³=1 → x_i = n^{-1/3}: A x² entries = n²·n^{-2/3}; λ x_i² =
	// λ·n^{-2/3} → λ = n².
	n := 5
	a := tensor.NewSymmetric(n)
	for i := range a.Data {
		a.Data[i] = 1
	}
	pair, err := HEigenPowerMethod(PackedSTTSV(a), n, 1000, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pair.Lambda-float64(n*n)) > 1e-9 {
		t.Fatalf("lambda = %g, want %d", pair.Lambda, n*n)
	}
}

func TestHEigenRejectsNegativeTensor(t *testing.T) {
	a := tensor.NewSymmetric(4)
	for i := range a.Data {
		a.Data[i] = -1
	}
	if _, err := HEigenPowerMethod(PackedSTTSV(a), 4, 100, 1e-10); err == nil {
		t.Fatal("negative tensor accepted")
	}
}

func TestHEigenZeroTensor(t *testing.T) {
	// The zero tensor has the valid H-eigenpair (0, x) for any positive
	// x: the bracket collapses to [0, 0] immediately.
	a := tensor.NewSymmetric(4)
	pair, err := HEigenPowerMethod(PackedSTTSV(a), 4, 100, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Converged || pair.Lambda != 0 {
		t.Fatalf("zero tensor: lambda=%g converged=%v", pair.Lambda, pair.Converged)
	}
}

func TestAdaptiveMatchesStaticShift(t *testing.T) {
	// Both methods converge to a Z-eigenpair of the same random tensor;
	// the adaptive one should not need more iterations than the static
	// safe shift.
	rng := rand.New(rand.NewSource(2))
	n := 8
	a := tensor.Random(n, rng)
	f := PackedSTTSV(a)
	shift := SuggestedShift(a)
	static, err := PowerMethod(f, n, Options{Seed: 3, Shift: shift, MaxIter: 100000, Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := AdaptivePowerMethod(f, n, shift, Options{Seed: 3, MaxIter: 100000, Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	if !adaptive.Converged {
		t.Fatal("adaptive did not converge")
	}
	if static.Converged && adaptive.Iterations > static.Iterations {
		t.Logf("note: adaptive used %d iterations vs static %d", adaptive.Iterations, static.Iterations)
	}
	// The result is a genuine eigenpair.
	if r := Residual(f, adaptive.X, adaptive.Lambda); r > 1e-4 {
		t.Fatalf("adaptive residual %g", r)
	}
}

func TestAdaptiveValidation(t *testing.T) {
	a := tensor.NewSymmetric(3)
	if _, err := AdaptivePowerMethod(PackedSTTSV(a), 3, 0, Options{}); err == nil {
		t.Error("zero shift accepted")
	}
	if _, err := AdaptivePowerMethod(PackedSTTSV(a), 3, 1, Options{X0: []float64{1}}); err == nil {
		t.Error("short X0 accepted")
	}
}

func TestEnumerateEigenpairsOdeco(t *testing.T) {
	// Orthogonal components 4, 3, 2: multi-start should find several
	// distinct eigenpairs (each component is an attracting fixed point of
	// S-HOPM for odeco tensors).
	n := 9
	e := func(i int) []float64 {
		v := make([]float64, n)
		v[i] = 1
		return v
	}
	a, err := tensor.CP([]float64{4, 3, 2}, [][]float64{e(0), e(3), e(6)})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := EnumerateEigenpairs(PackedSTTSV(a), n, 40, Options{Seed: 5, MaxIter: 3000}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) < 2 {
		t.Fatalf("found only %d distinct eigenpairs", len(pairs))
	}
	// Sorted by |λ| descending, and the dominant is 4.
	for i := 1; i < len(pairs); i++ {
		if math.Abs(pairs[i].Lambda) > math.Abs(pairs[i-1].Lambda)+1e-12 {
			t.Fatal("not sorted by |lambda|")
		}
	}
	if math.Abs(pairs[0].Lambda-4) > 1e-6 {
		t.Fatalf("dominant lambda = %g, want 4", pairs[0].Lambda)
	}
	// All returned pairs satisfy the eigen identity.
	for _, p := range pairs {
		if math.Abs(la.Norm(p.X)-1) > 1e-9 {
			t.Fatal("eigenvector not unit")
		}
		if r := Residual(PackedSTTSV(a), p.X, p.Lambda); r > 1e-6 {
			t.Fatalf("pair λ=%g residual %g", p.Lambda, r)
		}
	}
}
