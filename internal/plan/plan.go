// Package plan helps users pick a machine configuration. The tetrahedral
// partition only exists for specific processor counts — P = q(q²+1) for
// prime powers q (the spherical family) and the block counts of other
// Steiner quadruple systems such as SQS(8·2^k) — so a user with "about a
// hundred processors" needs the admissible configurations enumerated and
// costed. The planner lists every configuration up to a budget with its
// predicted communication (paper formulas), padding overhead for the
// user's n, and memory per processor, and picks the cheapest.
package plan

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/intmath"
)

// Family identifies how a configuration's Steiner system is constructed.
type Family int

const (
	// Spherical is the Steiner (q²+1, q+1, 3) family, P = q(q²+1).
	Spherical Family = iota
	// DoubledSQS is the SQS(8·2^k) family from the doubling construction,
	// P = m(m−1)(m−2)/24 with m = 8·2^k.
	DoubledSQS
)

func (f Family) String() string {
	switch f {
	case Spherical:
		return "spherical"
	case DoubledSQS:
		return "doubled-sqs"
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// Config is one admissible machine configuration, costed for a specific
// problem dimension n.
type Config struct {
	Family Family
	// Q is the prime power (Spherical) or the doubling count k
	// (DoubledSQS).
	Q int
	// M is the number of row blocks per mode and P the processor count.
	M, P int
	// BlockEdge is the block size b for the padded dimension.
	BlockEdge int
	// PaddedN is the smallest multiple of M at least n.
	PaddedN int
	// Words is the predicted per-processor communication (both vectors,
	// point-to-point wiring) at the padded dimension.
	Words float64
	// LowerBound is the Theorem 5.2 bound at (n, P).
	LowerBound float64
	// Steps is the per-phase schedule length.
	Steps int
	// TensorWordsPerProc approximates the per-processor tensor storage
	// n³/(6P).
	TensorWordsPerProc float64
}

// Enumerate lists every configuration with P <= maxP, costed for
// dimension n, sorted by increasing P. n must be positive.
func Enumerate(n, maxP int) ([]Config, error) {
	if n < 1 || maxP < 1 {
		return nil, fmt.Errorf("plan: Enumerate(%d, %d)", n, maxP)
	}
	var out []Config
	for q := 2; ; q++ {
		p := costmodel.Processors(q)
		if p > maxP {
			break
		}
		if _, _, ok := intmath.PrimePower(q); !ok {
			continue
		}
		out = append(out, makeConfig(Spherical, q, q*q+1, p, n))
	}
	for k, m := 0, 8; ; k, m = k+1, m*2 {
		p := m * (m - 1) * (m - 2) / 24
		if p > maxP {
			break
		}
		out = append(out, makeConfig(DoubledSQS, k, m, p, n))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P < out[j].P
		}
		return out[i].Family < out[j].Family
	})
	return out, nil
}

func makeConfig(f Family, q, m, p, n int) Config {
	padded := intmath.RoundUp(n, m)
	b := padded / m
	cfg := Config{
		Family:             f,
		Q:                  q,
		M:                  m,
		P:                  p,
		BlockEdge:          b,
		PaddedN:            padded,
		LowerBound:         costmodel.LowerBoundWords(n, p),
		TensorWordsPerProc: float64(padded) * float64(padded) * float64(padded) / (6 * float64(p)),
	}
	switch f {
	case Spherical:
		cfg.Words = costmodel.OptimalWords(padded, q)
		cfg.Steps = q*q*(q+1)/2 + q*q - 1
	case DoubledSQS:
		// Blocks of a quadruple system intersect in 0, 1 or 2 points.
		// A block's 6 pairs each lie in pairCount−1 = (m−2)/2 − 1 other
		// blocks (all distinct: sharing two pairs would mean sharing 3
		// points), giving the 2-row peers; each of its 4 points lies in
		// elementCount−1 further blocks, of which 3·(pairCount−1) share a
		// second point, leaving the 1-row peers. Total chunks exchanged
		// per vector: Σ_{i∈Rp}(|Q_i|−1) = 4·(elementCount−1).
		elementCount := (m - 1) * (m - 2) / 6
		pairCount := (m - 2) / 2
		twoPeers := 6 * (pairCount - 1)
		onePeers := 4*(elementCount-1) - 2*twoPeers
		cfg.Steps = twoPeers + onePeers
		chunk := float64(b) / float64(elementCount)
		cfg.Words = 2 * 4 * float64(elementCount-1) * chunk // both vectors
	}
	return cfg
}

// Best returns the configuration with the smallest predicted communication
// among those with P <= maxP; ties break toward larger P (more
// parallelism at equal cost).
func Best(n, maxP int) (Config, error) {
	cfgs, err := Enumerate(n, maxP)
	if err != nil {
		return Config{}, err
	}
	if len(cfgs) == 0 {
		return Config{}, fmt.Errorf("plan: no admissible configuration with P <= %d", maxP)
	}
	best := cfgs[0]
	for _, c := range cfgs[1:] {
		if c.Words < best.Words-1e-9 || (math.Abs(c.Words-best.Words) <= 1e-9 && c.P > best.P) {
			best = c
		}
	}
	return best, nil
}
