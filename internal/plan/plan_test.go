package plan

import (
	"math"
	"testing"

	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/steiner"
)

func TestEnumerate(t *testing.T) {
	cfgs, err := Enumerate(100, 150)
	if err != nil {
		t.Fatal(err)
	}
	// Expected machines with P <= 150: spherical q=2 (10), q=3 (30),
	// q=4 (68), q=5 (130); doubled k=0 (14), k=1 (140).
	wantP := map[int]bool{10: true, 30: true, 68: true, 130: true, 14: true, 140: true}
	if len(cfgs) != len(wantP) {
		t.Fatalf("enumerated %d configs: %+v", len(cfgs), cfgs)
	}
	for _, c := range cfgs {
		if !wantP[c.P] {
			t.Fatalf("unexpected P=%d", c.P)
		}
		if c.PaddedN < 100 || c.PaddedN%c.M != 0 || c.BlockEdge*c.M != c.PaddedN {
			t.Fatalf("padding wrong: %+v", c)
		}
		if c.Words <= 0 || c.LowerBound <= 0 || c.Steps <= 0 {
			t.Fatalf("costs missing: %+v", c)
		}
	}
	// Sorted by P.
	for i := 1; i < len(cfgs); i++ {
		if cfgs[i].P < cfgs[i-1].P {
			t.Fatal("not sorted by P")
		}
	}
}

func TestEnumerateSkipsNonPrimePowers(t *testing.T) {
	// q=6 is not a prime power: P=222 must be absent, P=350 (q=7)
	// present.
	cfgs, err := Enumerate(50, 400)
	if err != nil {
		t.Fatal(err)
	}
	saw350 := false
	for _, c := range cfgs {
		if c.P == 222 {
			t.Fatal("q=6 configuration enumerated")
		}
		if c.P == 350 {
			saw350 = true
		}
	}
	if !saw350 {
		t.Fatal("q=7 configuration missing")
	}
}

func TestSphericalPredictionMatchesMeasurement(t *testing.T) {
	// The planner's Words must equal the metered Algorithm 5 run when
	// chunks divide evenly.
	q := 3
	m := q*q + 1
	b := q * (q + 1)
	n := m * b
	cfgs, err := Enumerate(n, 30)
	if err != nil {
		t.Fatal(err)
	}
	var cfg *Config
	for i := range cfgs {
		if cfgs[i].Family == Spherical && cfgs[i].Q == q {
			cfg = &cfgs[i]
		}
	}
	if cfg == nil {
		t.Fatal("q=3 config missing")
	}
	part, err := partition.NewSpherical(q)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	res, err := parallel.Run(nil, x, parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(res.Report.MaxSentWords()); math.Abs(got-cfg.Words) > 1e-9 {
		t.Fatalf("predicted %g words, measured %g", cfg.Words, got)
	}
	if cfg.Steps != res.Steps {
		t.Fatalf("predicted %d steps, measured %d", cfg.Steps, res.Steps)
	}
}

func TestDoubledPredictionMatchesMeasurement(t *testing.T) {
	// Same cross-validation for the SQS(8) machine with b divisible by
	// |Qi| = 7.
	sys := steiner.SQS8()
	part, err := partition.New(sys)
	if err != nil {
		t.Fatal(err)
	}
	b := 7
	n := part.M * b // 56
	cfgs, err := Enumerate(n, 14)
	if err != nil {
		t.Fatal(err)
	}
	var cfg *Config
	for i := range cfgs {
		if cfgs[i].Family == DoubledSQS && cfgs[i].M == 8 {
			cfg = &cfgs[i]
		}
	}
	if cfg == nil {
		t.Fatal("SQS(8) config missing")
	}
	x := make([]float64, n)
	res, err := parallel.Run(nil, x, parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(res.Report.MaxSentWords()); math.Abs(got-cfg.Words) > 1e-9 {
		t.Fatalf("predicted %g words, measured %g", cfg.Words, got)
	}
	if cfg.Steps != 12 || res.Steps != 12 {
		t.Fatalf("steps: predicted %d, measured %d, want 12", cfg.Steps, res.Steps)
	}
}

func TestBestPrefersMoreParallelismAtLowerCost(t *testing.T) {
	// With a large budget, the biggest machine wins (cost ~ n/P^{1/3}
	// decreases in P).
	best, err := Best(1000, 400)
	if err != nil {
		t.Fatal(err)
	}
	if best.P != 350 {
		t.Fatalf("best P = %d (family %v), want 350", best.P, best.Family)
	}
	// With a tiny budget, only q=2 or SQS(8) are available.
	small, err := Best(1000, 20)
	if err != nil {
		t.Fatal(err)
	}
	if small.P != 10 && small.P != 14 {
		t.Fatalf("small-budget best P = %d", small.P)
	}
}

func TestBestErrors(t *testing.T) {
	if _, err := Best(100, 5); err == nil {
		t.Fatal("impossible budget accepted")
	}
	if _, err := Enumerate(0, 10); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestFamilyString(t *testing.T) {
	if Spherical.String() != "spherical" || DoubledSQS.String() != "doubled-sqs" {
		t.Fatal("family names wrong")
	}
	if Family(9).String() != "Family(9)" {
		t.Fatal("unknown family string")
	}
}

func TestSQS16PredictionMatchesMeasurement(t *testing.T) {
	// The corrected mixed 1-row/2-row peer accounting, cross-validated
	// against the metered run on the P=140 machine (b divisible by
	// |Qi| = 35).
	sys, err := steiner.SQSDoubled(1)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.New(sys)
	if err != nil {
		t.Fatal(err)
	}
	b := 35
	n := part.M * b // 560
	cfgs, err := Enumerate(n, 140)
	if err != nil {
		t.Fatal(err)
	}
	var cfg *Config
	for i := range cfgs {
		if cfgs[i].Family == DoubledSQS && cfgs[i].M == 16 {
			cfg = &cfgs[i]
		}
	}
	if cfg == nil {
		t.Fatal("SQS(16) config missing")
	}
	x := make([]float64, n)
	res, err := parallel.Run(nil, x, parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(res.Report.MaxSentWords()); math.Abs(got-cfg.Words) > 1e-9 {
		t.Fatalf("predicted %g words, measured %g", cfg.Words, got)
	}
	if cfg.Steps != res.Steps {
		t.Fatalf("predicted %d steps, measured %d", cfg.Steps, res.Steps)
	}
}
