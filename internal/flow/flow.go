// Package flow implements maximum flow on small directed networks.
//
// The paper assigns q non-central diagonal blocks to every processor
// (§6.1.3) by finding q disjoint matchings, and names the Ford–Fulkerson
// and Hopcroft–Karp algorithms as suitable tools. The capacitated
// formulation used here — source → processor with capacity q, processor →
// block with capacity 1, block → sink with capacity 1 — finds all q
// matchings in one solve. Both Dinic's algorithm (used by default) and the
// basic Ford–Fulkerson method (DFS augmentation, kept for cross-checking)
// are provided.
package flow

import "fmt"

// Network is a directed flow network with integer capacities. Vertices are
// 0-based and created up front.
type Network struct {
	n     int
	heads [][]int // heads[v] lists indices into edges
	edges []edge
}

type edge struct {
	to, cap, flow int
}

// NewNetwork returns a network with n vertices and no edges.
func NewNetwork(n int) *Network {
	if n < 0 {
		panic(fmt.Sprintf("flow: NewNetwork(%d)", n))
	}
	return &Network{n: n, heads: make([][]int, n)}
}

// NumVertices returns the vertex count.
func (nw *Network) NumVertices() int { return nw.n }

// AddEdge adds a directed edge u→v with the given capacity and returns its
// id, usable with Flow after a max-flow computation. A reverse edge of
// capacity 0 is added internally.
func (nw *Network) AddEdge(u, v, capacity int) int {
	if u < 0 || u >= nw.n || v < 0 || v >= nw.n {
		panic(fmt.Sprintf("flow: AddEdge(%d, %d) out of range %d", u, v, nw.n))
	}
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	id := len(nw.edges)
	nw.edges = append(nw.edges, edge{to: v, cap: capacity})
	nw.edges = append(nw.edges, edge{to: u, cap: 0})
	nw.heads[u] = append(nw.heads[u], id)
	nw.heads[v] = append(nw.heads[v], id+1)
	return id
}

// Flow returns the flow currently routed on edge id (as returned by
// AddEdge).
func (nw *Network) Flow(id int) int { return nw.edges[id].flow }

// Reset zeroes all flow so another computation can run on the same network.
func (nw *Network) Reset() {
	for i := range nw.edges {
		nw.edges[i].flow = 0
	}
}

// MaxFlowDinic computes the maximum s→t flow with Dinic's algorithm
// (level graph + blocking flow).
func (nw *Network) MaxFlowDinic(s, t int) int {
	if s == t {
		panic("flow: source equals sink")
	}
	level := make([]int, nw.n)
	iter := make([]int, nw.n)
	queue := make([]int, 0, nw.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], s)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, id := range nw.heads[v] {
				e := &nw.edges[id]
				if e.cap-e.flow > 0 && level[e.to] < 0 {
					level[e.to] = level[v] + 1
					queue = append(queue, e.to)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(v, f int) int
	dfs = func(v, f int) int {
		if v == t {
			return f
		}
		for ; iter[v] < len(nw.heads[v]); iter[v]++ {
			id := nw.heads[v][iter[v]]
			e := &nw.edges[id]
			if e.cap-e.flow <= 0 || level[e.to] != level[v]+1 {
				continue
			}
			d := f
			if r := e.cap - e.flow; r < d {
				d = r
			}
			if d = dfs(e.to, d); d > 0 {
				e.flow += d
				nw.edges[id^1].flow -= d
				return d
			}
		}
		return 0
	}

	const inf = int(^uint(0) >> 1)
	total := 0
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(s, inf)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

// MaxFlowFordFulkerson computes the maximum s→t flow by repeated DFS
// augmentation. It is asymptotically slower than Dinic but simple; tests
// cross-check the two.
func (nw *Network) MaxFlowFordFulkerson(s, t int) int {
	if s == t {
		panic("flow: source equals sink")
	}
	visited := make([]bool, nw.n)
	var dfs func(v, f int) int
	dfs = func(v, f int) int {
		if v == t {
			return f
		}
		visited[v] = true
		for _, id := range nw.heads[v] {
			e := &nw.edges[id]
			if e.cap-e.flow <= 0 || visited[e.to] {
				continue
			}
			d := f
			if r := e.cap - e.flow; r < d {
				d = r
			}
			if d = dfs(e.to, d); d > 0 {
				e.flow += d
				nw.edges[id^1].flow -= d
				return d
			}
		}
		return 0
	}
	const inf = int(^uint(0) >> 1)
	total := 0
	for {
		for i := range visited {
			visited[i] = false
		}
		f := dfs(s, inf)
		if f == 0 {
			return total
		}
		total += f
	}
}

// AssignWithCapacities solves the b-matching problem behind §6.1.3: given
// nLeft agents with per-agent capacity capLeft[i], nRight unit-demand items,
// and admissible pairs edges[i] (item lists per agent), it finds an
// assignment of every item to an admissible agent such that agent i
// receives at most capLeft[i] items. It returns assign[item] = agent, or an
// error when no complete assignment exists.
func AssignWithCapacities(nLeft, nRight int, capLeft []int, adj [][]int) ([]int, error) {
	if len(capLeft) != nLeft || len(adj) != nLeft {
		return nil, fmt.Errorf("flow: capLeft/adj sized %d/%d, want %d", len(capLeft), len(adj), nLeft)
	}
	// Vertices: 0 = source, 1..nLeft = agents, nLeft+1..nLeft+nRight =
	// items, last = sink.
	s := 0
	t := nLeft + nRight + 1
	nw := NewNetwork(nLeft + nRight + 2)
	for i := 0; i < nLeft; i++ {
		nw.AddEdge(s, 1+i, capLeft[i])
	}
	type pairEdge struct{ agent, item, id int }
	var pairs []pairEdge
	for i, items := range adj {
		for _, it := range items {
			if it < 0 || it >= nRight {
				return nil, fmt.Errorf("flow: item %d out of range %d", it, nRight)
			}
			id := nw.AddEdge(1+i, 1+nLeft+it, 1)
			pairs = append(pairs, pairEdge{agent: i, item: it, id: id})
		}
	}
	for j := 0; j < nRight; j++ {
		nw.AddEdge(1+nLeft+j, t, 1)
	}
	got := nw.MaxFlowDinic(s, t)
	if got != nRight {
		return nil, fmt.Errorf("flow: assignment incomplete: flow %d of %d items", got, nRight)
	}
	assign := make([]int, nRight)
	for i := range assign {
		assign[i] = -1
	}
	for _, p := range pairs {
		if nw.Flow(p.id) == 1 {
			assign[p.item] = p.agent
		}
	}
	for j, a := range assign {
		if a == -1 {
			return nil, fmt.Errorf("flow: internal error: item %d unassigned despite full flow", j)
		}
	}
	return assign, nil
}
