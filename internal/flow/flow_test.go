package flow

import (
	"math/rand"
	"testing"
)

func TestMaxFlowTextbook(t *testing.T) {
	// Classic CLRS-style network with max flow 23.
	nw := NewNetwork(6)
	s, v1, v2, v3, v4, tt := 0, 1, 2, 3, 4, 5
	nw.AddEdge(s, v1, 16)
	nw.AddEdge(s, v2, 13)
	nw.AddEdge(v1, v3, 12)
	nw.AddEdge(v2, v1, 4)
	nw.AddEdge(v2, v4, 14)
	nw.AddEdge(v3, v2, 9)
	nw.AddEdge(v3, tt, 20)
	nw.AddEdge(v4, v3, 7)
	nw.AddEdge(v4, tt, 4)
	if got := nw.MaxFlowDinic(s, tt); got != 23 {
		t.Fatalf("Dinic = %d, want 23", got)
	}
	nw.Reset()
	if got := nw.MaxFlowFordFulkerson(s, tt); got != 23 {
		t.Fatalf("Ford-Fulkerson = %d, want 23", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	nw := NewNetwork(4)
	nw.AddEdge(0, 1, 5)
	nw.AddEdge(2, 3, 5)
	if got := nw.MaxFlowDinic(0, 3); got != 0 {
		t.Fatalf("flow across disconnected = %d", got)
	}
}

func TestMaxFlowParallelEdges(t *testing.T) {
	nw := NewNetwork(2)
	nw.AddEdge(0, 1, 3)
	nw.AddEdge(0, 1, 4)
	if got := nw.MaxFlowDinic(0, 1); got != 7 {
		t.Fatalf("parallel edges flow = %d, want 7", got)
	}
}

func TestDinicMatchesFordFulkersonRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(8) + 2
		a := NewNetwork(n)
		b := NewNetwork(n)
		for e := 0; e < rng.Intn(20); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := rng.Intn(10)
			a.AddEdge(u, v, c)
			b.AddEdge(u, v, c)
		}
		fa := a.MaxFlowDinic(0, n-1)
		fb := b.MaxFlowFordFulkerson(0, n-1)
		if fa != fb {
			t.Fatalf("trial %d: Dinic %d vs FF %d", trial, fa, fb)
		}
	}
}

func TestFlowConservation(t *testing.T) {
	// After a max-flow solve, flow into each internal vertex equals flow
	// out (checked via per-edge Flow on the network above).
	nw := NewNetwork(4)
	e1 := nw.AddEdge(0, 1, 10)
	e2 := nw.AddEdge(1, 2, 5)
	e3 := nw.AddEdge(1, 3, 7)
	e4 := nw.AddEdge(2, 3, 5)
	total := nw.MaxFlowDinic(0, 3)
	if total != 10 {
		t.Fatalf("max flow = %d, want 10", total)
	}
	if nw.Flow(e1) != 10 {
		t.Errorf("edge s->1 carries %d", nw.Flow(e1))
	}
	if nw.Flow(e2)+nw.Flow(e3) != 10 {
		t.Errorf("vertex 1 not conserving: %d + %d", nw.Flow(e2), nw.Flow(e3))
	}
	if nw.Flow(e2) != nw.Flow(e4) {
		t.Errorf("vertex 2 not conserving")
	}
}

func TestReset(t *testing.T) {
	nw := NewNetwork(2)
	id := nw.AddEdge(0, 1, 5)
	nw.MaxFlowDinic(0, 1)
	if nw.Flow(id) != 5 {
		t.Fatal("expected saturated edge")
	}
	nw.Reset()
	if nw.Flow(id) != 0 {
		t.Fatal("Reset did not clear flow")
	}
	if got := nw.MaxFlowDinic(0, 1); got != 5 {
		t.Fatalf("flow after reset = %d", got)
	}
}

func TestAssignWithCapacities(t *testing.T) {
	// 2 agents with capacity 2 each, 4 items; agent 0 can take items
	// {0,1,2}, agent 1 can take {1,2,3}.
	assign, err := AssignWithCapacities(2, 4, []int{2, 2}, [][]int{{0, 1, 2}, {1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 2)
	for item, agent := range assign {
		counts[agent]++
		// Admissibility.
		adm := map[int][]int{0: {0, 1, 2}, 1: {1, 2, 3}}
		ok := false
		for _, it := range adm[agent] {
			if it == item {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("item %d assigned to inadmissible agent %d", item, agent)
		}
	}
	if counts[0] > 2 || counts[1] > 2 {
		t.Fatalf("capacity exceeded: %v", counts)
	}
}

func TestAssignWithCapacitiesInfeasible(t *testing.T) {
	// 3 items all admissible only to a capacity-2 agent.
	if _, err := AssignWithCapacities(1, 3, []int{2}, [][]int{{0, 1, 2}}); err == nil {
		t.Fatal("infeasible assignment accepted")
	}
}

func TestAssignWithCapacitiesValidation(t *testing.T) {
	if _, err := AssignWithCapacities(2, 2, []int{1}, [][]int{{0}, {1}}); err == nil {
		t.Fatal("mismatched capLeft accepted")
	}
	if _, err := AssignWithCapacities(1, 2, []int{2}, [][]int{{0, 5}}); err == nil {
		t.Fatal("out-of-range item accepted")
	}
}

func TestPanics(t *testing.T) {
	nw := NewNetwork(2)
	for name, fn := range map[string]func(){
		"self source/sink":  func() { nw.MaxFlowDinic(1, 1) },
		"edge out of range": func() { nw.AddEdge(0, 9, 1) },
		"negative capacity": func() { nw.AddEdge(0, 1, -1) },
		"negative size":     func() { NewNetwork(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkDinicAssignment(b *testing.B) {
	// Shape of the Np assignment at q=5: 130 processors × cap 5, 650
	// items.
	rng := rand.New(rand.NewSource(3))
	nLeft, nRight, capv := 130, 650, 5
	caps := make([]int, nLeft)
	adj := make([][]int, nLeft)
	for i := range caps {
		caps[i] = capv
		for k := 0; k < 15; k++ {
			adj[i] = append(adj[i], rng.Intn(nRight))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = AssignWithCapacities(nLeft, nRight, caps, adj)
	}
}
